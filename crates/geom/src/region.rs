//! Regions: canonical disjoint unions of boxes with set algebra, generic
//! over the dimension.

use crate::boxops;
use crate::point::Point;
use crate::rect::AABox;
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt;

/// A (possibly empty) set of grid cells stored as a list of pairwise
/// disjoint boxes.
///
/// `Region` is the type the execution simulator reasons with: "the part of
/// this ghost shell owned by processor 3", "the cells of level 2 covered by
/// level 3", "the subdomain assigned to this processor group". All
/// operations maintain disjointness, so [`Region::cells`] is a plain sum
/// and never double-counts.
#[derive(Clone, PartialEq, Eq)]
pub struct Region<const D: usize> {
    boxes: Vec<AABox<D>>,
}

/// 2-D region (the historical `Region` of the 2-D code base).
pub type Region2 = Region<2>;

/// 3-D region.
pub type Region3 = Region<3>;

impl<const D: usize> Default for Region<D> {
    fn default() -> Self {
        Self { boxes: Vec::new() }
    }
}

impl<const D: usize> Region<D> {
    /// The empty region.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A region consisting of a single box.
    pub fn from_rect(r: AABox<D>) -> Self {
        Self { boxes: vec![r] }
    }

    /// Build a region from possibly-overlapping boxes (overlaps are
    /// deduplicated).
    pub fn from_boxes(boxes: &[AABox<D>]) -> Self {
        Self {
            boxes: boxops::disjointify(boxes),
        }
    }

    /// The disjoint boxes making up the region.
    pub fn boxes(&self) -> &[AABox<D>] {
        &self.boxes
    }

    /// `true` if the region contains no cells.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Number of boxes in the representation (not cells).
    pub fn box_count(&self) -> usize {
        self.boxes.len()
    }

    /// Exact number of cells in the region.
    pub fn cells(&self) -> u64 {
        self.boxes.iter().map(AABox::cells).sum()
    }

    /// `true` if the cell `p` is in the region.
    pub fn contains_point(&self, p: Point<D>) -> bool {
        self.boxes.iter().any(|b| b.contains_point(p))
    }

    /// Smallest box containing the region, or `None` if empty.
    pub fn bounding_box(&self) -> Option<AABox<D>> {
        let mut it = self.boxes.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, b| acc.bounding_union(b)))
    }

    /// Set union.
    pub fn union(&self, other: &Region<D>) -> Region<D> {
        if self.is_empty() {
            return other.clone();
        }
        let mut boxes = self.boxes.clone();
        for b in &other.boxes {
            let mut pieces = boxops::subtract_all(b, &self.boxes);
            boxes.append(&mut pieces);
        }
        Region { boxes }
    }

    /// Add a single box to the region.
    pub fn insert(&mut self, r: AABox<D>) {
        let pieces = boxops::subtract_all(&r, &self.boxes);
        self.boxes.extend(pieces);
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Region<D>) -> Region<D> {
        let mut boxes = Vec::new();
        for a in &self.boxes {
            for b in &other.boxes {
                if let Some(i) = a.intersect(b) {
                    boxes.push(i);
                }
            }
        }
        // Inputs are disjoint lists, so the pairwise intersections are
        // disjoint already.
        Region { boxes }
    }

    /// Intersection with a single box.
    pub fn intersect_rect(&self, r: &AABox<D>) -> Region<D> {
        Region {
            boxes: self.boxes.iter().filter_map(|b| b.intersect(r)).collect(),
        }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &Region<D>) -> Region<D> {
        self.subtract_boxes(&other.boxes)
    }

    /// Set difference against a raw box list.
    pub fn subtract_boxes(&self, bs: &[AABox<D>]) -> Region<D> {
        let mut boxes = Vec::new();
        for a in &self.boxes {
            boxes.extend(boxops::subtract_all(a, bs));
        }
        Region { boxes }
    }

    /// Number of cells shared with `other` without materializing the
    /// intersection.
    pub fn overlap_cells(&self, other: &Region<D>) -> u64 {
        boxops::pairwise_overlap_cells(&self.boxes, &other.boxes)
    }

    /// Reduce the number of boxes in the representation without changing
    /// the cell set.
    pub fn coalesce(&mut self) {
        self.boxes = boxops::coalesce(&self.boxes);
    }

    /// Refine every box by factor `r` (cells subdivide; the region covers
    /// the same physical volume at the finer index space).
    pub fn refine(&self, r: i64) -> Region<D> {
        Region {
            boxes: self.boxes.iter().map(|b| b.refine(r)).collect(),
        }
    }

    /// Coarsen every box by factor `r`. Coarsening can make boxes
    /// overlap, so the result is re-disjointified.
    pub fn coarsen(&self, r: i64) -> Region<D> {
        let coarse: Vec<AABox<D>> = self.boxes.iter().map(|b| b.coarsen(r)).collect();
        Region {
            boxes: boxops::disjointify(&coarse),
        }
    }

    /// Canonical sorted form for order-independent equality checks in
    /// tests: two regions with the same cells can have different box
    /// decompositions, so [`Region::same_cells`] is the semantic
    /// equality.
    pub fn same_cells(&self, other: &Region<D>) -> bool {
        self.cells() == other.cells() && self.overlap_cells(other) == self.cells()
    }
}

impl<const D: usize> fmt::Debug for Region<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Region[{} boxes, {} cells]",
            self.boxes.len(),
            self.cells()
        )
    }
}

impl<const D: usize> FromIterator<AABox<D>> for Region<D> {
    fn from_iter<T: IntoIterator<Item = AABox<D>>>(iter: T) -> Self {
        let boxes: Vec<AABox<D>> = iter.into_iter().collect();
        Region::from_boxes(&boxes)
    }
}

impl<const D: usize> Serialize for Region<D> {
    fn serialize(&self) -> Value {
        self.boxes.serialize()
    }
}

impl<const D: usize> Deserialize for Region<D> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let boxes: Vec<AABox<D>> = Deserialize::deserialize(v)?;
        Ok(Region::from_boxes(&boxes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;
    use crate::rect::{Box3, Rect2};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn empty_region() {
        let e = Region2::empty();
        assert!(e.is_empty());
        assert_eq!(e.cells(), 0);
        assert!(e.bounding_box().is_none());
    }

    #[test]
    fn from_overlapping_boxes_dedups() {
        let reg = Region::from_boxes(&[r(0, 0, 3, 3), r(2, 2, 5, 5)]);
        assert_eq!(reg.cells(), 28);
    }

    #[test]
    fn union_is_idempotent_and_commutative_on_cells() {
        let a = Region::from_rect(r(0, 0, 4, 4));
        let b = Region::from_boxes(&[r(3, 3, 7, 7), r(10, 0, 11, 1)]);
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        assert!(u1.same_cells(&u2));
        assert!(u1.same_cells(&u1.union(&a)));
        assert_eq!(u1.cells(), 25 + 25 - 4 + 4);
    }

    #[test]
    fn intersect_and_subtract_partition_the_set() {
        let a = Region::from_rect(r(0, 0, 9, 9));
        let b = Region::from_boxes(&[r(5, 5, 14, 14), r(-3, -3, 1, 1)]);
        let inter = a.intersect(&b);
        let diff = a.subtract(&b);
        assert_eq!(inter.cells() + diff.cells(), a.cells());
        assert_eq!(inter.overlap_cells(&diff), 0);
    }

    #[test]
    fn insert_accumulates() {
        let mut reg = Region2::empty();
        reg.insert(r(0, 0, 1, 1));
        reg.insert(r(1, 1, 2, 2)); // overlaps one cell
        assert_eq!(reg.cells(), 7);
        assert!(reg.contains_point(Point2::new(2, 2)));
        assert!(!reg.contains_point(Point2::new(3, 3)));
    }

    #[test]
    fn refine_scales_cells_by_r_squared() {
        let reg = Region::from_boxes(&[r(0, 0, 2, 2), r(5, 5, 6, 6)]);
        assert_eq!(reg.refine(2).cells(), reg.cells() * 4);
    }

    #[test]
    fn coarsen_covers_original() {
        let reg = Region::from_boxes(&[r(1, 1, 6, 3), r(4, 2, 9, 8)]);
        let c = reg.coarsen(2);
        // Every original box must be inside the refined coarse region.
        let cov = c.refine(2);
        for b in reg.boxes() {
            assert_eq!(cov.intersect_rect(b).cells(), b.cells());
        }
    }

    #[test]
    fn coarsen_disjointifies() {
        // Two fine boxes that coarsen onto overlapping coarse boxes.
        let reg = Region::from_boxes(&[r(0, 0, 1, 1), r(2, 2, 3, 3)]);
        let c = reg.coarsen(4);
        assert_eq!(c.cells(), 1); // both coarsen into coarse cell (0,0)
    }

    #[test]
    fn intersect_rect_clips() {
        let reg = Region::from_boxes(&[r(0, 0, 9, 9)]);
        assert_eq!(reg.intersect_rect(&r(8, 8, 12, 12)).cells(), 4);
    }

    #[test]
    fn coalesce_preserves_cells() {
        let mut reg = Region::from_boxes(&[r(0, 0, 3, 1), r(0, 2, 3, 3)]);
        let cells = reg.cells();
        reg.coalesce();
        assert_eq!(reg.cells(), cells);
        assert_eq!(reg.box_count(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let reg: Region2 = vec![r(0, 0, 0, 0), r(1, 0, 1, 0)].into_iter().collect();
        assert_eq!(reg.cells(), 2);
    }

    #[test]
    fn bounding_box_spans_all() {
        let reg = Region::from_boxes(&[r(0, 0, 1, 1), r(9, 9, 10, 10)]);
        assert_eq!(reg.bounding_box(), Some(r(0, 0, 10, 10)));
    }

    #[test]
    fn three_d_set_algebra() {
        let a = Region::from_rect(Box3::from_extents(8, 8, 8));
        let hole = Region::from_rect(Box3::from_coords(2, 2, 2, 5, 5, 5));
        let diff = a.subtract(&hole);
        assert_eq!(diff.cells(), 512 - 64);
        assert_eq!(diff.overlap_cells(&hole), 0);
        let back = diff.union(&hole);
        assert!(back.same_cells(&a));
        assert_eq!(a.refine(2).cells(), 512 * 8);
    }
}
