//! 2-D integer lattice points.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point on the 2-D integer index lattice.
///
/// Coordinates are `i64` so that refining a box (multiplying coordinates by
/// the refinement factor) can never overflow for realistic hierarchy depths:
/// the paper's configuration is a base grid of at most a few hundred cells
/// per side with 5 levels of factor-2 refinement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Point2 {
    /// Coordinate along the first (x) axis.
    pub x: i64,
    /// Coordinate along the second (y) axis.
    pub y: i64,
}

impl Point2 {
    /// Create a point from its coordinates.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ZERO: Self = Self::new(0, 0);

    /// The unit point `(1, 1)`.
    pub const ONE: Self = Self::new(1, 1);

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Component-wise multiplication.
    #[inline]
    pub fn scale(self, f: i64) -> Self {
        Self::new(self.x * f, self.y * f)
    }

    /// Component-wise Euclidean floor division (rounds towards negative
    /// infinity), which is the correct coarsening map for cell indices:
    /// coarsening cell `-1` by factor 2 must give cell `-1`, not `0`.
    #[inline]
    pub fn div_floor(self, f: i64) -> Self {
        Self::new(self.x.div_euclid(f), self.y.div_euclid(f))
    }

    /// `true` if both coordinates of `self` are `<=` those of `other`.
    #[inline]
    pub fn le(self, other: Self) -> bool {
        self.x <= other.x && self.y <= other.y
    }

    /// Sum of coordinates (useful for L1 norms of offsets).
    #[inline]
    pub fn l1(self) -> i64 {
        self.x.abs() + self.y.abs()
    }

    /// Access a coordinate by axis index (0 = x, 1 = y).
    #[inline]
    pub fn get(self, axis: crate::rect::Axis) -> i64 {
        match axis {
            crate::rect::Axis::X => self.x,
            crate::rect::Axis::Y => self.y,
        }
    }

    /// Return a copy with the coordinate on `axis` replaced by `v`.
    #[inline]
    pub fn with(self, axis: crate::rect::Axis, v: i64) -> Self {
        match axis {
            crate::rect::Axis::X => Self::new(v, self.y),
            crate::rect::Axis::Y => Self::new(self.x, v),
        }
    }
}

impl fmt::Debug for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point2 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point2 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<i64> for Point2 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: i64) -> Self {
        self.scale(rhs)
    }
}

impl Div<i64> for Point2 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: i64) -> Self {
        self.div_floor(rhs)
    }
}

impl Neg for Point2 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y)
    }
}

impl From<(i64, i64)> for Point2 {
    #[inline]
    fn from((x, y): (i64, i64)) -> Self {
        Self::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Axis;

    #[test]
    fn arithmetic_basics() {
        let a = Point2::new(3, -2);
        let b = Point2::new(-1, 5);
        assert_eq!(a + b, Point2::new(2, 3));
        assert_eq!(a - b, Point2::new(4, -7));
        assert_eq!(a * 2, Point2::new(6, -4));
        assert_eq!(-a, Point2::new(-3, 2));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point2::new(3, -2);
        let b = Point2::new(-1, 5);
        assert_eq!(a.min(b), Point2::new(-1, -2));
        assert_eq!(a.max(b), Point2::new(3, 5));
    }

    #[test]
    fn div_floor_rounds_toward_negative_infinity() {
        assert_eq!(Point2::new(-1, -2).div_floor(2), Point2::new(-1, -1));
        assert_eq!(Point2::new(-3, 3).div_floor(2), Point2::new(-2, 1));
        assert_eq!(Point2::new(4, 5).div_floor(2), Point2::new(2, 2));
        // Operator form routes through div_floor.
        assert_eq!(Point2::new(-5, 7) / 4, Point2::new(-2, 1));
    }

    #[test]
    fn le_requires_both_axes() {
        assert!(Point2::new(1, 1).le(Point2::new(2, 1)));
        assert!(!Point2::new(1, 2).le(Point2::new(2, 1)));
    }

    #[test]
    fn axis_accessors_roundtrip() {
        let p = Point2::new(7, 9);
        assert_eq!(p.get(Axis::X), 7);
        assert_eq!(p.get(Axis::Y), 9);
        assert_eq!(p.with(Axis::X, 1), Point2::new(1, 9));
        assert_eq!(p.with(Axis::Y, 1), Point2::new(7, 1));
    }

    #[test]
    fn l1_norm() {
        assert_eq!(Point2::new(-3, 4).l1(), 7);
        assert_eq!(Point2::ZERO.l1(), 0);
    }

    #[test]
    fn assign_ops() {
        let mut p = Point2::new(1, 1);
        p += Point2::new(2, 3);
        assert_eq!(p, Point2::new(3, 4));
        p -= Point2::new(1, 1);
        assert_eq!(p, Point2::new(2, 3));
    }
}
