//! Dimension-generic integer lattice points.

use crate::rect::Axis;
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point on the `D`-dimensional integer index lattice.
///
/// Coordinates are `i64` so that refining a box (multiplying coordinates by
/// the refinement factor) can never overflow for realistic hierarchy depths:
/// the paper's configuration is a base grid of at most a few hundred cells
/// per side with 5 levels of factor-2 refinement.
///
/// [`Point2`] (= `Point<2>`) and [`Point3`] (= `Point<3>`) additionally
/// dereference to named-coordinate views, so 2-D code keeps reading `p.x`
/// and `p.y` while dimension-generic code indexes `p[axis]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point<const D: usize> {
    coords: [i64; D],
}

/// 2-D lattice point (the historical `Point2` of the 2-D code base).
pub type Point2 = Point<2>;

/// 3-D lattice point.
pub type Point3 = Point<3>;

/// Named-coordinate view of a [`Point2`] (via `Deref`).
#[repr(C)]
pub struct Xy {
    /// Coordinate along the first (x) axis.
    pub x: i64,
    /// Coordinate along the second (y) axis.
    pub y: i64,
}

/// Named-coordinate view of a [`Point3`] (via `Deref`).
#[repr(C)]
pub struct Xyz {
    /// Coordinate along the first (x) axis.
    pub x: i64,
    /// Coordinate along the second (y) axis.
    pub y: i64,
    /// Coordinate along the third (z) axis.
    pub z: i64,
}

impl std::ops::Deref for Point<2> {
    type Target = Xy;
    #[inline]
    fn deref(&self) -> &Xy {
        // SAFETY: `Xy` is `repr(C)` with two `i64` fields, layout-identical
        // to `[i64; 2]`.
        unsafe { &*(self.coords.as_ptr() as *const Xy) }
    }
}

impl std::ops::DerefMut for Point<2> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Xy {
        // SAFETY: as in `Deref`.
        unsafe { &mut *(self.coords.as_mut_ptr() as *mut Xy) }
    }
}

impl std::ops::Deref for Point<3> {
    type Target = Xyz;
    #[inline]
    fn deref(&self) -> &Xyz {
        // SAFETY: `Xyz` is `repr(C)` with three `i64` fields,
        // layout-identical to `[i64; 3]`.
        unsafe { &*(self.coords.as_ptr() as *const Xyz) }
    }
}

impl std::ops::DerefMut for Point<3> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Xyz {
        // SAFETY: as in `Deref`.
        unsafe { &mut *(self.coords.as_mut_ptr() as *mut Xyz) }
    }
}

impl Point<2> {
    /// Create a 2-D point from its coordinates.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Self { coords: [x, y] }
    }
}

impl Point<3> {
    /// Create a 3-D point from its coordinates.
    #[inline]
    pub const fn new(x: i64, y: i64, z: i64) -> Self {
        Self { coords: [x, y, z] }
    }
}

impl<const D: usize> Point<D> {
    /// The origin (all coordinates 0).
    pub const ZERO: Self = Self { coords: [0; D] };

    /// The unit point (all coordinates 1).
    pub const ONE: Self = Self { coords: [1; D] };

    /// A point with every coordinate equal to `v`.
    #[inline]
    pub const fn splat(v: i64) -> Self {
        Self { coords: [v; D] }
    }

    /// Create a point from a coordinate array.
    #[inline]
    pub const fn from_array(coords: [i64; D]) -> Self {
        Self { coords }
    }

    /// The coordinate array.
    #[inline]
    pub const fn coords(self) -> [i64; D] {
        self.coords
    }

    /// Build a point from a per-axis closure.
    #[inline]
    pub fn from_fn(f: impl FnMut(usize) -> i64) -> Self {
        Self {
            coords: std::array::from_fn(f),
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self::from_fn(|i| self.coords[i].min(other.coords[i]))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self::from_fn(|i| self.coords[i].max(other.coords[i]))
    }

    /// Component-wise multiplication by a scalar.
    #[inline]
    pub fn scale(self, f: i64) -> Self {
        Self::from_fn(|i| self.coords[i] * f)
    }

    /// Component-wise Euclidean floor division (rounds towards negative
    /// infinity), which is the correct coarsening map for cell indices:
    /// coarsening cell `-1` by factor 2 must give cell `-1`, not `0`.
    #[inline]
    pub fn div_floor(self, f: i64) -> Self {
        Self::from_fn(|i| self.coords[i].div_euclid(f))
    }

    /// `true` if every coordinate of `self` is `<=` the matching one of
    /// `other`.
    #[inline]
    pub fn le(self, other: Self) -> bool {
        (0..D).all(|i| self.coords[i] <= other.coords[i])
    }

    /// Sum of absolute coordinates (L1 norm of an offset).
    #[inline]
    pub fn l1(self) -> i64 {
        self.coords.iter().map(|c| c.abs()).sum()
    }

    /// Access a coordinate by axis.
    #[inline]
    pub fn get(self, axis: Axis) -> i64 {
        self.coords[axis.index()]
    }

    /// Return a copy with the coordinate on `axis` replaced by `v`.
    #[inline]
    pub fn with(self, axis: Axis, v: i64) -> Self {
        let mut coords = self.coords;
        coords[axis.index()] = v;
        Self { coords }
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = i64;
    #[inline]
    fn index(&self, i: usize) -> &i64 {
        &self.coords[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut i64 {
        &mut self.coords[i]
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::from_fn(|i| self.coords[i] + rhs.coords[i])
    }
}

impl<const D: usize> AddAssign for Point<D> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.coords[i] += rhs.coords[i];
        }
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::from_fn(|i| self.coords[i] - rhs.coords[i])
    }
}

impl<const D: usize> SubAssign for Point<D> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.coords[i] -= rhs.coords[i];
        }
    }
}

impl<const D: usize> Mul<i64> for Point<D> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: i64) -> Self {
        self.scale(rhs)
    }
}

impl<const D: usize> Div<i64> for Point<D> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: i64) -> Self {
        self.div_floor(rhs)
    }
}

impl<const D: usize> Neg for Point<D> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::from_fn(|i| -self.coords[i])
    }
}

impl<const D: usize> From<[i64; D]> for Point<D> {
    #[inline]
    fn from(coords: [i64; D]) -> Self {
        Self { coords }
    }
}

impl From<(i64, i64)> for Point<2> {
    #[inline]
    fn from((x, y): (i64, i64)) -> Self {
        Self::new(x, y)
    }
}

impl From<(i64, i64, i64)> for Point<3> {
    #[inline]
    fn from((x, y, z): (i64, i64, i64)) -> Self {
        Self::new(x, y, z)
    }
}

// The vendored serde derive does not support generics, so the impls are
// written by hand: a point serializes as the plain coordinate sequence.
impl<const D: usize> Serialize for Point<D> {
    fn serialize(&self) -> Value {
        Value::Seq(self.coords.iter().map(|c| c.serialize()).collect())
    }
}

impl<const D: usize> Deserialize for Point<D> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let Value::Seq(items) = v else {
            return Err(Error::msg(format!("expected point sequence, got {v:?}")));
        };
        if items.len() != D {
            return Err(Error::msg(format!(
                "expected {D} coordinates, got {}",
                items.len()
            )));
        }
        let mut coords = [0i64; D];
        for (c, item) in coords.iter_mut().zip(items) {
            *c = i64::deserialize(item)?;
        }
        Ok(Self { coords })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Point2::new(3, -2);
        let b = Point2::new(-1, 5);
        assert_eq!(a + b, Point2::new(2, 3));
        assert_eq!(a - b, Point2::new(4, -7));
        assert_eq!(a * 2, Point2::new(6, -4));
        assert_eq!(-a, Point2::new(-3, 2));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point2::new(3, -2);
        let b = Point2::new(-1, 5);
        assert_eq!(a.min(b), Point2::new(-1, -2));
        assert_eq!(a.max(b), Point2::new(3, 5));
    }

    #[test]
    fn div_floor_rounds_toward_negative_infinity() {
        assert_eq!(Point2::new(-1, -2).div_floor(2), Point2::new(-1, -1));
        assert_eq!(Point2::new(-3, 3).div_floor(2), Point2::new(-2, 1));
        assert_eq!(Point2::new(4, 5).div_floor(2), Point2::new(2, 2));
        // Operator form routes through div_floor.
        assert_eq!(Point2::new(-5, 7) / 4, Point2::new(-2, 1));
    }

    #[test]
    fn le_requires_both_axes() {
        assert!(Point2::new(1, 1).le(Point2::new(2, 1)));
        assert!(!Point2::new(1, 2).le(Point2::new(2, 1)));
    }

    #[test]
    fn axis_accessors_roundtrip() {
        let p = Point2::new(7, 9);
        assert_eq!(p.get(Axis::X), 7);
        assert_eq!(p.get(Axis::Y), 9);
        assert_eq!(p.with(Axis::X, 1), Point2::new(1, 9));
        assert_eq!(p.with(Axis::Y, 1), Point2::new(7, 1));
    }

    #[test]
    fn l1_norm() {
        assert_eq!(Point2::new(-3, 4).l1(), 7);
        assert_eq!(Point2::ZERO.l1(), 0);
    }

    #[test]
    fn assign_ops() {
        let mut p = Point2::new(1, 1);
        p += Point2::new(2, 3);
        assert_eq!(p, Point2::new(3, 4));
        p -= Point2::new(1, 1);
        assert_eq!(p, Point2::new(2, 3));
    }

    #[test]
    fn deref_views_read_and_write() {
        let mut p = Point2::new(4, 9);
        assert_eq!(p.x, 4);
        assert_eq!(p.y, 9);
        p.x = -1;
        assert_eq!(p, Point2::new(-1, 9));
        let mut q = Point3::new(1, 2, 3);
        assert_eq!((q.x, q.y, q.z), (1, 2, 3));
        q.z = 7;
        assert_eq!(q, Point3::new(1, 2, 7));
    }

    #[test]
    fn three_dimensional_ops() {
        let a = Point3::new(1, 2, 3);
        let b = Point3::new(4, -1, 0);
        assert_eq!(a + b, Point3::new(5, 1, 3));
        assert_eq!(a.min(b), Point3::new(1, -1, 0));
        assert_eq!(a.get(Axis::Z), 3);
        assert_eq!(a.with(Axis::Z, 9), Point3::new(1, 2, 9));
        assert_eq!(a[2], 3);
        assert!(Point3::ZERO.le(a));
        assert_eq!(format!("{a:?}"), "(1, 2, 3)");
    }

    #[test]
    fn serde_roundtrip_is_a_sequence() {
        let p = Point3::new(-4, 0, 17);
        let v = p.serialize();
        assert_eq!(
            v,
            Value::Seq(vec![Value::I64(-4), Value::U64(0), Value::U64(17)])
        );
        assert_eq!(Point3::deserialize(&v).unwrap(), p);
        assert!(Point2::deserialize(&v).is_err());
    }
}
