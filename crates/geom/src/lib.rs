//! # samr-geom — integer index-space geometry for SAMR
//!
//! Structured adaptive mesh refinement (SAMR) manipulates *logically
//! rectangular* index boxes: patches of a grid hierarchy are boxes, a
//! partitioner cuts boxes, the data-migration penalty of the paper is a sum
//! of box intersections. This crate provides the exact-arithmetic geometry
//! substrate that everything else builds on:
//!
//! - [`Point2`]: 2-D integer lattice points;
//! - [`Rect2`]: non-empty axis-aligned boxes with inclusive bounds, with
//!   refinement/coarsening (the factor-2 space refinement of the paper),
//!   intersection, growth (ghost regions) and splitting;
//! - [`boxops`]: algebra on box lists — subtraction, disjointification,
//!   coalescing and exact union areas;
//! - [`Region`]: a canonicalized disjoint union of boxes supporting the set
//!   algebra the simulator needs (what part of a ghost region belongs to
//!   which owner, what part of a level is covered by the next one, …);
//! - [`Grid2`]: a dense buffer over a box domain (solution fields and
//!   refinement flag masks);
//! - [`sfc`]: Morton and Hilbert space-filling curves used by the
//!   domain-based partitioners.
//!
//! All arithmetic is `i64`/`u64` and exact: the model of the paper is a
//! *deterministic* function of the grid hierarchy, and the reproduction
//! keeps it bit-reproducible across runs and thread counts.

#![warn(missing_docs)]

pub mod boxops;
pub mod dense;
pub mod point;
pub mod rect;
pub mod region;
pub mod sfc;

pub use dense::Grid2;
pub use point::Point2;
pub use rect::{Axis, Rect2};
pub use region::Region;
pub use sfc::{sfc_key, SfcCurve};
