//! # samr-geom — integer index-space geometry for SAMR
//!
//! Structured adaptive mesh refinement (SAMR) manipulates *logically
//! rectangular* index boxes: patches of a grid hierarchy are boxes, a
//! partitioner cuts boxes, the data-migration penalty of the paper is a sum
//! of box intersections. This crate provides the exact-arithmetic geometry
//! substrate that everything else builds on, **generic over the spatial
//! dimension** (`D ∈ {2, 3}` in practice — the paper's model is
//! dimension-agnostic and the engine sweeps both):
//!
//! - [`Point`]: `D`-dimensional integer lattice points, with [`Point2`]
//!   and [`Point3`] aliases that deref to named `x`/`y`(/`z`) views so the
//!   2-D call sites read unchanged;
//! - [`AABox`]: non-empty axis-aligned boxes with inclusive bounds, with
//!   refinement/coarsening (the factor-2 space refinement of the paper),
//!   intersection, growth (ghost regions) and splitting; [`Rect2`] is the
//!   2-D alias the original code base was written against;
//! - [`boxops`]: algebra on box lists — subtraction, disjointification,
//!   coalescing and exact union volumes;
//! - [`Region`]: a canonicalized disjoint union of boxes supporting the set
//!   algebra the simulator needs (what part of a ghost region belongs to
//!   which owner, what part of a level is covered by the next one, …);
//! - [`Grid2`]/[`Grid3`] ([`dense::Grid`]): dense buffers over a box domain
//!   (solution fields and refinement flag masks);
//! - [`sfc`]: Morton and Hilbert space-filling curves in 2-D and 3-D used
//!   by the domain-based partitioners.
//!
//! All arithmetic is `i64`/`u64` and exact: the model of the paper is a
//! *deterministic* function of the grid hierarchy, and the reproduction
//! keeps it bit-reproducible across runs, thread counts and — for `D = 2` —
//! across the dimension-generic refactor (the 2-D property tests pin the
//! generic code to the original 2-D outputs).

#![warn(missing_docs)]

pub mod boxops;
pub mod dense;
pub mod point;
pub mod rect;
pub mod region;
pub mod sfc;

pub use dense::{Grid2, Grid3};
pub use point::{Point, Point2, Point3};
pub use rect::{AABox, Axis, Box3, Rect2};
pub use region::{Region, Region2, Region3};
pub use sfc::{sfc_key, sfc_key_nd, SfcCurve};
