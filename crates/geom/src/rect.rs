//! Axis-aligned integer boxes with inclusive bounds, generic over the
//! dimension.

use crate::point::Point;
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt;

/// A coordinate axis of the index space (up to 3-D).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Axis {
    /// First axis.
    X,
    /// Second axis.
    Y,
    /// Third axis.
    Z,
}

impl Axis {
    /// The first `D` axes, in order.
    #[inline]
    pub fn all<const D: usize>() -> [Axis; D] {
        std::array::from_fn(Axis::from_index)
    }

    /// The axis with index `i` (0 = X, 1 = Y, 2 = Z).
    #[inline]
    pub fn from_index(i: usize) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            _ => panic!("axis index {i} out of range (supported dimensions: 2, 3)"),
        }
    }

    /// The index of the axis (0 = X, 1 = Y, 2 = Z).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }
}

/// A non-empty axis-aligned box of grid cells, `lo ..= hi` on every axis.
///
/// `AABox` is the unit of currency of the whole reproduction: SAMR patches,
/// partition fragments, ghost regions and flag clusters are all boxes.
/// The type maintains the invariant `lo <= hi` component-wise, so a box
/// always contains at least one cell; operations that can produce an empty
/// result (intersection, shrinking) return `Option`. Keeping emptiness out
/// of the representation removes a whole class of degenerate-box bugs from
/// the box algebra that the paper's β_m penalty (a triple sum of box
/// intersections) relies on.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AABox<const D: usize> {
    lo: Point<D>,
    hi: Point<D>,
}

/// 2-D box (the historical `Rect2` of the 2-D code base).
pub type Rect2 = AABox<2>;

/// 3-D box.
pub type Box3 = AABox<3>;

impl AABox<2> {
    /// Convenience constructor from scalar corner coordinates.
    #[inline]
    #[track_caller]
    pub fn from_coords(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Self::new(Point::<2>::new(x0, y0), Point::<2>::new(x1, y1))
    }

    /// The box `[0, nx-1] x [0, ny-1]`. Panics if either extent is zero.
    #[inline]
    #[track_caller]
    pub fn from_extents(nx: i64, ny: i64) -> Self {
        Self::from_extent_array([nx, ny])
    }
}

impl AABox<3> {
    /// Convenience constructor from scalar corner coordinates.
    #[inline]
    #[track_caller]
    #[allow(clippy::too_many_arguments)]
    pub fn from_coords(x0: i64, y0: i64, z0: i64, x1: i64, y1: i64, z1: i64) -> Self {
        Self::new(Point::<3>::new(x0, y0, z0), Point::<3>::new(x1, y1, z1))
    }

    /// The box `[0, nx-1] x [0, ny-1] x [0, nz-1]`. Panics if any extent
    /// is zero.
    #[inline]
    #[track_caller]
    pub fn from_extents(nx: i64, ny: i64, nz: i64) -> Self {
        Self::from_extent_array([nx, ny, nz])
    }
}

impl<const D: usize> AABox<D> {
    /// Create a box from inclusive corners. Panics if `lo > hi` on any
    /// axis; use [`AABox::try_new`] for fallible construction.
    #[inline]
    #[track_caller]
    pub fn new(lo: Point<D>, hi: Point<D>) -> Self {
        assert!(
            lo.le(hi),
            "AABox::new: lo {lo:?} must be <= hi {hi:?} on every axis"
        );
        Self { lo, hi }
    }

    /// Create a box from inclusive corners, returning `None` if it would
    /// be empty.
    #[inline]
    pub fn try_new(lo: Point<D>, hi: Point<D>) -> Option<Self> {
        if lo.le(hi) {
            Some(Self { lo, hi })
        } else {
            None
        }
    }

    /// The box `[0, e_0-1] x … x [0, e_{D-1}-1]` from an extent array.
    /// Panics if any extent is non-positive.
    #[inline]
    #[track_caller]
    pub fn from_extent_array(extents: [i64; D]) -> Self {
        assert!(
            extents.iter().all(|&e| e > 0),
            "extents must be positive: {extents:?}"
        );
        Self::new(Point::ZERO, Point::from_fn(|i| extents[i] - 1))
    }

    /// A single-cell box.
    #[inline]
    pub fn cell(p: Point<D>) -> Self {
        Self { lo: p, hi: p }
    }

    /// Inclusive lower corner.
    #[inline]
    pub fn lo(&self) -> Point<D> {
        self.lo
    }

    /// Inclusive upper corner.
    #[inline]
    pub fn hi(&self) -> Point<D> {
        self.hi
    }

    /// Number of cells along each axis (always positive).
    #[inline]
    pub fn extent(&self) -> Point<D> {
        self.hi - self.lo + Point::ONE
    }

    /// Number of cells along `axis`.
    #[inline]
    pub fn len(&self, axis: Axis) -> i64 {
        self.extent().get(axis)
    }

    /// Total number of cells in the box.
    #[inline]
    pub fn cells(&self) -> u64 {
        self.extent().coords().iter().map(|&e| e as u64).product()
    }

    /// Number of cells on the boundary shell of width `g` (cells within
    /// `g` of the box surface). `perimeter_cells` is the `g = 1` case.
    #[inline]
    pub fn boundary_shell_cells(&self, g: i64) -> u64 {
        let e = self.extent();
        if e.coords().iter().any(|&x| x <= 2 * g) {
            self.cells()
        } else {
            let interior: u64 = e.coords().iter().map(|&x| (x - 2 * g) as u64).product();
            self.cells() - interior
        }
    }

    /// Number of cells on the boundary ring of the box (cells with at
    /// least one face on the box surface). This drives the worst-case
    /// ghost-cell communication estimate `β_c`.
    #[inline]
    pub fn perimeter_cells(&self) -> u64 {
        self.boundary_shell_cells(1)
    }

    /// The axis along which the box is longest (ties go to the lowest
    /// axis index, i.e. X).
    #[inline]
    pub fn longest_axis(&self) -> Axis {
        let e = self.extent();
        let mut best = 0usize;
        for i in 1..D {
            if e[i] > e[best] {
                best = i;
            }
        }
        Axis::from_index(best)
    }

    /// `true` if the cell `p` lies inside the box.
    #[inline]
    pub fn contains_point(&self, p: Point<D>) -> bool {
        self.lo.le(p) && p.le(self.hi)
    }

    /// `true` if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &AABox<D>) -> bool {
        self.lo.le(other.lo) && other.hi.le(self.hi)
    }

    /// `true` if the boxes share at least one cell.
    #[inline]
    pub fn intersects(&self, other: &AABox<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// The common cells of two boxes, if any. This is the `∩` of the
    /// paper's β_m definition.
    #[inline]
    pub fn intersect(&self, other: &AABox<D>) -> Option<AABox<D>> {
        AABox::try_new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Number of cells shared by two boxes (0 if disjoint). Cheaper than
    /// materializing the intersection box when only the count is needed —
    /// the β_m inner loop uses this.
    #[inline]
    pub fn overlap_cells(&self, other: &AABox<D>) -> u64 {
        let mut n = 1u64;
        for i in 0..D {
            let w = (self.hi[i].min(other.hi[i]) - self.lo[i].max(other.lo[i]) + 1).max(0) as u64;
            n *= w;
        }
        n
    }

    /// Smallest box containing both inputs.
    #[inline]
    pub fn bounding_union(&self, other: &AABox<D>) -> AABox<D> {
        AABox {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Grow the box by `g >= 0` cells on every side (ghost region of
    /// width `g`).
    #[inline]
    pub fn grow(&self, g: i64) -> AABox<D> {
        debug_assert!(g >= 0);
        AABox {
            lo: self.lo - Point::splat(g),
            hi: self.hi + Point::splat(g),
        }
    }

    /// Shrink the box by `g >= 0` cells on every side; `None` if nothing
    /// remains.
    #[inline]
    pub fn shrink(&self, g: i64) -> Option<AABox<D>> {
        debug_assert!(g >= 0);
        AABox::try_new(self.lo + Point::splat(g), self.hi - Point::splat(g))
    }

    /// Translate the box by an offset.
    #[inline]
    pub fn translate(&self, d: Point<D>) -> AABox<D> {
        AABox {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// Refine the box by an integer factor `r >= 1`: the resulting fine
    /// box covers exactly the same physical volume. Cell `i` refines to
    /// cells `i*r ..= i*r + r-1`, matching Berger–Colella index
    /// conventions.
    #[inline]
    pub fn refine(&self, r: i64) -> AABox<D> {
        debug_assert!(r >= 1);
        AABox {
            lo: self.lo * r,
            hi: self.hi * r + Point::splat(r - 1),
        }
    }

    /// Coarsen the box by an integer factor `r >= 1`: the resulting
    /// coarse box is the smallest coarse box *covering* the fine box.
    /// Uses floor division so negative indices coarsen correctly.
    #[inline]
    pub fn coarsen(&self, r: i64) -> AABox<D> {
        debug_assert!(r >= 1);
        AABox {
            lo: self.lo.div_floor(r),
            hi: self.hi.div_floor(r),
        }
    }

    /// Split the box into `([lo, c], [c+1, hi])` along `axis`. Panics
    /// unless `lo(axis) <= c < hi(axis)` — both halves are non-empty by
    /// construction.
    #[inline]
    #[track_caller]
    pub fn split_at(&self, axis: Axis, c: i64) -> (AABox<D>, AABox<D>) {
        assert!(
            self.lo.get(axis) <= c && c < self.hi.get(axis),
            "split coordinate {c} outside the interior of {self:?} on {axis:?}"
        );
        let left = AABox {
            lo: self.lo,
            hi: self.hi.with(axis, c),
        };
        let right = AABox {
            lo: self.lo.with(axis, c + 1),
            hi: self.hi,
        };
        (left, right)
    }

    /// Split the box into two roughly equal halves along its longest
    /// axis; `None` if the box is a single cell.
    pub fn bisect(&self) -> Option<(AABox<D>, AABox<D>)> {
        let axis = self.longest_axis();
        if self.len(axis) < 2 {
            return None;
        }
        let mid = self.lo.get(axis) + (self.len(axis) / 2) - 1;
        Some(self.split_at(axis, mid))
    }

    /// Iterate over every cell of the box in row-major order (axis 0
    /// fastest, last axis outermost — y-outer in 2-D).
    pub fn iter_cells(&self) -> impl Iterator<Item = Point<D>> + '_ {
        let lo = self.lo;
        let e = self.extent();
        (0..self.cells()).map(move |idx| {
            let mut rest = idx;
            Point::from_fn(|i| {
                let w = e[i] as u64;
                let c = lo[i] + (rest % w) as i64;
                rest /= w;
                c
            })
        })
    }

    /// Row-major linear index of a cell within the box (axis 0 has
    /// stride 1). Panics in debug builds if the cell is outside.
    #[inline]
    pub fn linear_index(&self, p: Point<D>) -> usize {
        debug_assert!(self.contains_point(p), "{p:?} not in {self:?}");
        let e = self.extent();
        let mut idx = 0i64;
        let mut stride = 1i64;
        for i in 0..D {
            idx += (p[i] - self.lo[i]) * stride;
            stride *= e[i];
        }
        idx as usize
    }

    /// Deterministic spatial ordering: lexicographic on the *reversed*
    /// coordinates of `lo`, then of `hi` — `(lo.y, lo.x, hi.y, hi.x)` in
    /// 2-D, matching the historical sort key of the clusterer and the
    /// hybrid partitioner's block order.
    pub fn cmp_spatial(&self, other: &AABox<D>) -> std::cmp::Ordering {
        for i in (0..D).rev() {
            match self.lo[i].cmp(&other.lo[i]) {
                std::cmp::Ordering::Equal => {}
                o => return o,
            }
        }
        for i in (0..D).rev() {
            match self.hi[i].cmp(&other.hi[i]) {
                std::cmp::Ordering::Equal => {}
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl<const D: usize> fmt::Debug for AABox<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..D {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}..{}", self.lo[i], self.hi[i])?;
        }
        write!(f, "]")
    }
}

impl<const D: usize> fmt::Display for AABox<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const D: usize> Serialize for AABox<D> {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("lo".to_string(), self.lo.serialize()),
            ("hi".to_string(), self.hi.serialize()),
        ])
    }
}

impl<const D: usize> Deserialize for AABox<D> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let lo: Point<D> = serde::field(v, "lo")?;
        let hi: Point<D> = serde::field(v, "hi")?;
        AABox::try_new(lo, hi).ok_or_else(|| Error::msg(format!("empty box {lo:?}..{hi:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Point2, Point3};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn construction_and_extent() {
        let b = r(0, 0, 3, 1);
        assert_eq!(b.extent(), Point2::new(4, 2));
        assert_eq!(b.cells(), 8);
        assert_eq!(b.len(Axis::X), 4);
        assert_eq!(b.len(Axis::Y), 2);
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn invalid_construction_panics() {
        let _ = r(2, 0, 1, 0);
    }

    #[test]
    fn try_new_rejects_empty() {
        assert!(Rect2::try_new(Point2::new(1, 0), Point2::new(0, 0)).is_none());
        assert!(Rect2::try_new(Point2::ZERO, Point2::ZERO).is_some());
    }

    #[test]
    fn single_cell_box() {
        let c = Rect2::cell(Point2::new(5, -3));
        assert_eq!(c.cells(), 1);
        assert_eq!(c.perimeter_cells(), 1);
        assert!(c.contains_point(Point2::new(5, -3)));
    }

    #[test]
    fn intersection_matches_overlap_count() {
        let a = r(0, 0, 9, 9);
        let b = r(5, 5, 14, 14);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, r(5, 5, 9, 9));
        assert_eq!(i.cells(), a.overlap_cells(&b));
        assert!(a.intersects(&b));
    }

    #[test]
    fn disjoint_boxes_do_not_intersect() {
        let a = r(0, 0, 4, 4);
        let b = r(5, 0, 9, 4); // adjacent, not overlapping
        assert!(!a.intersects(&b));
        assert!(a.intersect(&b).is_none());
        assert_eq!(a.overlap_cells(&b), 0);
    }

    #[test]
    fn refine_coarsen_roundtrip_covers() {
        let b = r(1, 2, 5, 7);
        let f = b.refine(2);
        assert_eq!(f, r(2, 4, 11, 15));
        assert_eq!(f.cells(), b.cells() * 4);
        assert_eq!(f.coarsen(2), b);
    }

    #[test]
    fn coarsen_negative_indices_floor() {
        let b = r(-3, -1, 2, 2);
        assert_eq!(b.coarsen(2), r(-2, -1, 1, 1));
    }

    #[test]
    fn coarsen_then_refine_contains_original() {
        let b = r(1, 1, 6, 5);
        let cov = b.coarsen(4).refine(4);
        assert!(cov.contains_rect(&b));
    }

    #[test]
    fn grow_shrink() {
        let b = r(2, 2, 5, 5);
        assert_eq!(b.grow(2), r(0, 0, 7, 7));
        assert_eq!(b.grow(1).shrink(1), Some(b));
        assert!(r(0, 0, 1, 1).shrink(1).is_none());
    }

    #[test]
    fn perimeter_counts() {
        assert_eq!(r(0, 0, 3, 3).perimeter_cells(), 12); // 16 - 4 interior
        assert_eq!(r(0, 0, 1, 5).perimeter_cells(), 12); // thin box: all cells
        assert_eq!(r(0, 0, 0, 0).perimeter_cells(), 1);
    }

    #[test]
    fn split_and_bisect() {
        let b = r(0, 0, 9, 3);
        let (l, rr) = b.split_at(Axis::X, 4);
        assert_eq!(l, r(0, 0, 4, 3));
        assert_eq!(rr, r(5, 0, 9, 3));
        assert_eq!(l.cells() + rr.cells(), b.cells());

        let (top, bot) = b.bisect().unwrap();
        assert_eq!(top.cells() + bot.cells(), b.cells());
        assert!(Rect2::cell(Point2::ZERO).bisect().is_none());
    }

    #[test]
    #[should_panic(expected = "split coordinate")]
    fn split_at_edge_panics() {
        let b = r(0, 0, 3, 3);
        let _ = b.split_at(Axis::X, 3); // right half would be empty
    }

    #[test]
    fn iter_cells_row_major() {
        let b = r(0, 0, 1, 1);
        let cells: Vec<_> = b.iter_cells().collect();
        assert_eq!(
            cells,
            vec![
                Point2::new(0, 0),
                Point2::new(1, 0),
                Point2::new(0, 1),
                Point2::new(1, 1)
            ]
        );
        for (i, c) in b.iter_cells().enumerate() {
            assert_eq!(b.linear_index(c), i);
        }
    }

    #[test]
    fn bounding_union_contains_both() {
        let a = r(0, 0, 2, 2);
        let b = r(5, 1, 6, 8);
        let u = a.bounding_union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(u, r(0, 0, 6, 8));
    }

    #[test]
    fn longest_axis_tie_goes_to_x() {
        assert_eq!(r(0, 0, 3, 3).longest_axis(), Axis::X);
        assert_eq!(r(0, 0, 1, 5).longest_axis(), Axis::Y);
    }

    #[test]
    fn three_d_basics() {
        let b = Box3::from_extents(4, 3, 2);
        assert_eq!(b.cells(), 24);
        assert_eq!(b.extent(), Point3::new(4, 3, 2));
        assert_eq!(b.longest_axis(), Axis::X);
        assert_eq!(b.perimeter_cells(), 24); // a 2-thick slab is all boundary
        let c = Box3::from_extents(4, 4, 4);
        assert_eq!(c.perimeter_cells(), 64 - 8);
        let f = b.refine(2);
        assert_eq!(f.cells(), b.cells() * 8);
        assert_eq!(f.coarsen(2), b);
        let (l, rr) = b.split_at(Axis::Z, 0);
        assert_eq!(l.cells() + rr.cells(), b.cells());
    }

    #[test]
    fn three_d_iter_cells_is_row_major() {
        let b = Box3::from_coords(0, 0, 0, 1, 1, 1);
        let cells: Vec<_> = b.iter_cells().collect();
        assert_eq!(cells[0], Point3::new(0, 0, 0));
        assert_eq!(cells[1], Point3::new(1, 0, 0));
        assert_eq!(cells[2], Point3::new(0, 1, 0));
        assert_eq!(cells[4], Point3::new(0, 0, 1));
        for (i, c) in b.iter_cells().enumerate() {
            assert_eq!(b.linear_index(c), i);
        }
    }

    #[test]
    fn spatial_order_matches_historical_2d_key() {
        let mut boxes = vec![r(4, 0, 5, 1), r(0, 2, 1, 3), r(0, 0, 1, 1), r(0, 0, 3, 1)];
        boxes.sort_by(|a, b| a.cmp_spatial(b));
        let mut expected = boxes.clone();
        expected.sort_by_key(|b| (b.lo().y, b.lo().x, b.hi().y, b.hi().x));
        assert_eq!(boxes, expected);
    }

    #[test]
    fn serde_roundtrip_and_validation() {
        let b = Box3::from_coords(1, 2, 3, 4, 5, 6);
        let v = b.serialize();
        assert_eq!(Box3::deserialize(&v).unwrap(), b);
        // An inverted box must be rejected at the deserialization boundary.
        let bad = Value::Map(vec![
            ("lo".into(), Point3::new(5, 0, 0).serialize()),
            ("hi".into(), Point3::new(0, 0, 0).serialize()),
        ]);
        assert!(Box3::deserialize(&bad).is_err());
    }
}
