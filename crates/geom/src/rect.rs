//! Axis-aligned integer boxes with inclusive bounds.

use crate::point::Point2;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two coordinate axes of the 2-D index space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Axis {
    /// First axis.
    X,
    /// Second axis.
    Y,
}

impl Axis {
    /// Both axes, in order.
    pub const ALL: [Axis; 2] = [Axis::X, Axis::Y];

    /// The other axis.
    #[inline]
    pub fn other(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

/// A non-empty axis-aligned box of grid cells, `lo ..= hi` on both axes.
///
/// `Rect2` is the unit of currency of the whole reproduction: SAMR patches,
/// partition fragments, ghost regions and flag clusters are all `Rect2`s.
/// The type maintains the invariant `lo <= hi` component-wise, so a `Rect2`
/// always contains at least one cell; operations that can produce an empty
/// result (intersection, shrinking) return `Option<Rect2>`. Keeping
/// emptiness out of the representation removes a whole class of
/// degenerate-box bugs from the box algebra that the paper's β_m penalty
/// (a triple sum of box intersections) relies on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect2 {
    lo: Point2,
    hi: Point2,
}

impl Rect2 {
    /// Create a box from inclusive corners. Panics if `lo > hi` on any axis;
    /// use [`Rect2::try_new`] for fallible construction.
    #[inline]
    #[track_caller]
    pub fn new(lo: Point2, hi: Point2) -> Self {
        assert!(
            lo.le(hi),
            "Rect2::new: lo {lo:?} must be <= hi {hi:?} on both axes"
        );
        Self { lo, hi }
    }

    /// Create a box from inclusive corners, returning `None` if it would be
    /// empty.
    #[inline]
    pub fn try_new(lo: Point2, hi: Point2) -> Option<Self> {
        if lo.le(hi) {
            Some(Self { lo, hi })
        } else {
            None
        }
    }

    /// Convenience constructor from scalar corner coordinates.
    #[inline]
    #[track_caller]
    pub fn from_coords(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Self::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    /// The box `[0, nx-1] x [0, ny-1]`. Panics if either extent is zero.
    #[inline]
    #[track_caller]
    pub fn from_extents(nx: i64, ny: i64) -> Self {
        assert!(nx > 0 && ny > 0, "extents must be positive: {nx} x {ny}");
        Self::new(Point2::ZERO, Point2::new(nx - 1, ny - 1))
    }

    /// A single-cell box.
    #[inline]
    pub fn cell(p: Point2) -> Self {
        Self { lo: p, hi: p }
    }

    /// Inclusive lower corner.
    #[inline]
    pub fn lo(&self) -> Point2 {
        self.lo
    }

    /// Inclusive upper corner.
    #[inline]
    pub fn hi(&self) -> Point2 {
        self.hi
    }

    /// Number of cells along each axis (always positive).
    #[inline]
    pub fn extent(&self) -> Point2 {
        self.hi - self.lo + Point2::ONE
    }

    /// Number of cells along `axis`.
    #[inline]
    pub fn len(&self, axis: Axis) -> i64 {
        self.extent().get(axis)
    }

    /// Total number of cells in the box.
    #[inline]
    pub fn cells(&self) -> u64 {
        let e = self.extent();
        (e.x as u64) * (e.y as u64)
    }

    /// Number of cells on the boundary ring of the box (cells with at least
    /// one face on the box surface). This drives the worst-case ghost-cell
    /// communication estimate `β_c`.
    #[inline]
    pub fn perimeter_cells(&self) -> u64 {
        let e = self.extent();
        if e.x <= 2 || e.y <= 2 {
            self.cells()
        } else {
            self.cells() - ((e.x - 2) as u64) * ((e.y - 2) as u64)
        }
    }

    /// The axis along which the box is longest (ties go to X).
    #[inline]
    pub fn longest_axis(&self) -> Axis {
        let e = self.extent();
        if e.y > e.x {
            Axis::Y
        } else {
            Axis::X
        }
    }

    /// `true` if the cell `p` lies inside the box.
    #[inline]
    pub fn contains_point(&self, p: Point2) -> bool {
        self.lo.le(p) && p.le(self.hi)
    }

    /// `true` if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect2) -> bool {
        self.lo.le(other.lo) && other.hi.le(self.hi)
    }

    /// `true` if the boxes share at least one cell.
    #[inline]
    pub fn intersects(&self, other: &Rect2) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// The common cells of two boxes, if any. This is the `∩` of the paper's
    /// β_m definition.
    #[inline]
    pub fn intersect(&self, other: &Rect2) -> Option<Rect2> {
        Rect2::try_new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Number of cells shared by two boxes (0 if disjoint). Cheaper than
    /// materializing the intersection box when only the count is needed —
    /// the β_m inner loop uses this.
    #[inline]
    pub fn overlap_cells(&self, other: &Rect2) -> u64 {
        let w = (self.hi.x.min(other.hi.x) - self.lo.x.max(other.lo.x) + 1).max(0) as u64;
        let h = (self.hi.y.min(other.hi.y) - self.lo.y.max(other.lo.y) + 1).max(0) as u64;
        w * h
    }

    /// Smallest box containing both inputs.
    #[inline]
    pub fn bounding_union(&self, other: &Rect2) -> Rect2 {
        Rect2 {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Grow the box by `g >= 0` cells on every side (ghost region of width
    /// `g`).
    #[inline]
    pub fn grow(&self, g: i64) -> Rect2 {
        debug_assert!(g >= 0);
        Rect2 {
            lo: self.lo - Point2::new(g, g),
            hi: self.hi + Point2::new(g, g),
        }
    }

    /// Shrink the box by `g >= 0` cells on every side; `None` if nothing
    /// remains.
    #[inline]
    pub fn shrink(&self, g: i64) -> Option<Rect2> {
        debug_assert!(g >= 0);
        Rect2::try_new(self.lo + Point2::new(g, g), self.hi - Point2::new(g, g))
    }

    /// Translate the box by an offset.
    #[inline]
    pub fn translate(&self, d: Point2) -> Rect2 {
        Rect2 {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// Refine the box by an integer factor `r >= 1`: the resulting fine box
    /// covers exactly the same physical area. Cell `i` refines to cells
    /// `i*r ..= i*r + r-1`, matching Berger–Colella index conventions.
    #[inline]
    pub fn refine(&self, r: i64) -> Rect2 {
        debug_assert!(r >= 1);
        Rect2 {
            lo: self.lo * r,
            hi: self.hi * r + Point2::new(r - 1, r - 1),
        }
    }

    /// Coarsen the box by an integer factor `r >= 1`: the resulting coarse
    /// box is the smallest coarse box *covering* the fine box. Uses floor
    /// division so negative indices coarsen correctly.
    #[inline]
    pub fn coarsen(&self, r: i64) -> Rect2 {
        debug_assert!(r >= 1);
        Rect2 {
            lo: self.lo.div_floor(r),
            hi: self.hi.div_floor(r),
        }
    }

    /// Split the box into `([lo, c], [c+1, hi])` along `axis`. Panics unless
    /// `lo(axis) <= c < hi(axis)` — both halves are non-empty by
    /// construction.
    #[inline]
    #[track_caller]
    pub fn split_at(&self, axis: Axis, c: i64) -> (Rect2, Rect2) {
        assert!(
            self.lo.get(axis) <= c && c < self.hi.get(axis),
            "split coordinate {c} outside the interior of {self:?} on {axis:?}"
        );
        let left = Rect2 {
            lo: self.lo,
            hi: self.hi.with(axis, c),
        };
        let right = Rect2 {
            lo: self.lo.with(axis, c + 1),
            hi: self.hi,
        };
        (left, right)
    }

    /// Split the box into two roughly equal halves along its longest axis;
    /// `None` if the box is a single cell.
    pub fn bisect(&self) -> Option<(Rect2, Rect2)> {
        let axis = self.longest_axis();
        if self.len(axis) < 2 {
            return None;
        }
        let mid = self.lo.get(axis) + (self.len(axis) / 2) - 1;
        Some(self.split_at(axis, mid))
    }

    /// Iterate over every cell of the box in row-major (y-outer) order.
    pub fn iter_cells(&self) -> impl Iterator<Item = Point2> + '_ {
        let (lo, hi) = (self.lo, self.hi);
        (lo.y..=hi.y).flat_map(move |y| (lo.x..=hi.x).map(move |x| Point2::new(x, y)))
    }

    /// Row-major linear index of a cell within the box. Panics in debug
    /// builds if the cell is outside.
    #[inline]
    pub fn linear_index(&self, p: Point2) -> usize {
        debug_assert!(self.contains_point(p), "{p:?} not in {self:?}");
        let e = self.extent();
        ((p.y - self.lo.y) * e.x + (p.x - self.lo.x)) as usize
    }
}

impl fmt::Debug for Rect2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}, {}..{}]",
            self.lo.x, self.hi.x, self.lo.y, self.hi.y
        )
    }
}

impl fmt::Display for Rect2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn construction_and_extent() {
        let b = r(0, 0, 3, 1);
        assert_eq!(b.extent(), Point2::new(4, 2));
        assert_eq!(b.cells(), 8);
        assert_eq!(b.len(Axis::X), 4);
        assert_eq!(b.len(Axis::Y), 2);
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn invalid_construction_panics() {
        let _ = r(2, 0, 1, 0);
    }

    #[test]
    fn try_new_rejects_empty() {
        assert!(Rect2::try_new(Point2::new(1, 0), Point2::new(0, 0)).is_none());
        assert!(Rect2::try_new(Point2::ZERO, Point2::ZERO).is_some());
    }

    #[test]
    fn single_cell_box() {
        let c = Rect2::cell(Point2::new(5, -3));
        assert_eq!(c.cells(), 1);
        assert_eq!(c.perimeter_cells(), 1);
        assert!(c.contains_point(Point2::new(5, -3)));
    }

    #[test]
    fn intersection_matches_overlap_count() {
        let a = r(0, 0, 9, 9);
        let b = r(5, 5, 14, 14);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, r(5, 5, 9, 9));
        assert_eq!(i.cells(), a.overlap_cells(&b));
        assert!(a.intersects(&b));
    }

    #[test]
    fn disjoint_boxes_do_not_intersect() {
        let a = r(0, 0, 4, 4);
        let b = r(5, 0, 9, 4); // adjacent, not overlapping
        assert!(!a.intersects(&b));
        assert!(a.intersect(&b).is_none());
        assert_eq!(a.overlap_cells(&b), 0);
    }

    #[test]
    fn refine_coarsen_roundtrip_covers() {
        let b = r(1, 2, 5, 7);
        let f = b.refine(2);
        assert_eq!(f, r(2, 4, 11, 15));
        assert_eq!(f.cells(), b.cells() * 4);
        assert_eq!(f.coarsen(2), b);
    }

    #[test]
    fn coarsen_negative_indices_floor() {
        let b = r(-3, -1, 2, 2);
        assert_eq!(b.coarsen(2), r(-2, -1, 1, 1));
    }

    #[test]
    fn coarsen_then_refine_contains_original() {
        let b = r(1, 1, 6, 5);
        let cov = b.coarsen(4).refine(4);
        assert!(cov.contains_rect(&b));
    }

    #[test]
    fn grow_shrink() {
        let b = r(2, 2, 5, 5);
        assert_eq!(b.grow(2), r(0, 0, 7, 7));
        assert_eq!(b.grow(1).shrink(1), Some(b));
        assert!(r(0, 0, 1, 1).shrink(1).is_none());
    }

    #[test]
    fn perimeter_counts() {
        assert_eq!(r(0, 0, 3, 3).perimeter_cells(), 12); // 16 - 4 interior
        assert_eq!(r(0, 0, 1, 5).perimeter_cells(), 12); // thin box: all cells
        assert_eq!(r(0, 0, 0, 0).perimeter_cells(), 1);
    }

    #[test]
    fn split_and_bisect() {
        let b = r(0, 0, 9, 3);
        let (l, rr) = b.split_at(Axis::X, 4);
        assert_eq!(l, r(0, 0, 4, 3));
        assert_eq!(rr, r(5, 0, 9, 3));
        assert_eq!(l.cells() + rr.cells(), b.cells());

        let (top, bot) = b.bisect().unwrap();
        assert_eq!(top.cells() + bot.cells(), b.cells());
        assert!(Rect2::cell(Point2::ZERO).bisect().is_none());
    }

    #[test]
    #[should_panic(expected = "split coordinate")]
    fn split_at_edge_panics() {
        let b = r(0, 0, 3, 3);
        let _ = b.split_at(Axis::X, 3); // right half would be empty
    }

    #[test]
    fn iter_cells_row_major() {
        let b = r(0, 0, 1, 1);
        let cells: Vec<_> = b.iter_cells().collect();
        assert_eq!(
            cells,
            vec![
                Point2::new(0, 0),
                Point2::new(1, 0),
                Point2::new(0, 1),
                Point2::new(1, 1)
            ]
        );
        for (i, c) in b.iter_cells().enumerate() {
            assert_eq!(b.linear_index(c), i);
        }
    }

    #[test]
    fn bounding_union_contains_both() {
        let a = r(0, 0, 2, 2);
        let b = r(5, 1, 6, 8);
        let u = a.bounding_union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(u, r(0, 0, 6, 8));
    }

    #[test]
    fn longest_axis_tie_goes_to_x() {
        assert_eq!(r(0, 0, 3, 3).longest_axis(), Axis::X);
        assert_eq!(r(0, 0, 1, 5).longest_axis(), Axis::Y);
    }
}
