//! Property-based tests for the geometry substrate.
//!
//! The box algebra underpins every measured quantity in the reproduction
//! (β_m is literally a sum of box intersections), so its invariants are
//! checked against brute-force cell enumeration on randomly generated
//! boxes.

use proptest::prelude::*;
use samr_geom::boxops;
use samr_geom::sfc::{hilbert_decode, hilbert_key, morton_decode, morton_key};
use samr_geom::{Point2, Rect2, Region};

/// Strategy: a box with corners in [-40, 40] and extents in [1, 24].
fn arb_rect() -> impl Strategy<Value = Rect2> {
    (-40i64..40, -40i64..40, 1i64..24, 1i64..24)
        .prop_map(|(x, y, w, h)| Rect2::new(Point2::new(x, y), Point2::new(x + w - 1, y + h - 1)))
}

fn arb_rect_list(max: usize) -> impl Strategy<Value = Vec<Rect2>> {
    prop::collection::vec(arb_rect(), 1..max)
}

/// Brute-force cell count of a union by membership testing over the
/// bounding box.
fn brute_union_cells(boxes: &[Rect2]) -> u64 {
    let bb = boxes
        .iter()
        .skip(1)
        .fold(boxes[0], |acc, b| acc.bounding_union(b));
    bb.iter_cells()
        .filter(|c| boxes.iter().any(|b| b.contains_point(*c)))
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn intersection_is_commutative_and_correct(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.overlap_cells(&b), b.overlap_cells(&a));
        match a.intersect(&b) {
            Some(i) => {
                prop_assert!(a.contains_rect(&i) && b.contains_rect(&i));
                prop_assert_eq!(i.cells(), a.overlap_cells(&b));
            }
            None => prop_assert_eq!(a.overlap_cells(&b), 0),
        }
    }

    #[test]
    fn subtraction_partitions_the_minuend(a in arb_rect(), b in arb_rect()) {
        let pieces = boxops::subtract(&a, &b);
        // Pieces are disjoint from b and from each other, stay inside a,
        // and together with a∩b tile a exactly.
        let mut total = 0u64;
        for (i, p) in pieces.iter().enumerate() {
            prop_assert!(a.contains_rect(p));
            prop_assert!(!p.intersects(&b));
            for q in &pieces[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
            total += p.cells();
        }
        prop_assert_eq!(total + a.overlap_cells(&b), a.cells());
    }

    #[test]
    fn disjointify_preserves_union_cells(boxes in arb_rect_list(8)) {
        let dis = boxops::disjointify(&boxes);
        for (i, p) in dis.iter().enumerate() {
            for q in &dis[i + 1..] {
                prop_assert!(!p.intersects(q), "{:?} vs {:?}", p, q);
            }
        }
        prop_assert_eq!(boxops::total_cells(&dis), brute_union_cells(&boxes));
    }

    #[test]
    fn coalesce_preserves_cells_and_disjointness(boxes in arb_rect_list(8)) {
        let dis = boxops::disjointify(&boxes);
        let merged = boxops::coalesce(&dis);
        prop_assert_eq!(boxops::total_cells(&merged), boxops::total_cells(&dis));
        for (i, p) in merged.iter().enumerate() {
            for q in &merged[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
        prop_assert!(merged.len() <= dis.len());
    }

    #[test]
    fn region_algebra_is_set_algebra(xs in arb_rect_list(6), ys in arb_rect_list(6)) {
        let a = Region::from_boxes(&xs);
        let b = Region::from_boxes(&ys);
        let union = a.union(&b);
        let inter = a.intersect(&b);
        let diff = a.subtract(&b);
        // |A ∪ B| = |A| + |B| - |A ∩ B|
        prop_assert_eq!(union.cells(), a.cells() + b.cells() - inter.cells());
        // A = (A \ B) ⊎ (A ∩ B)
        prop_assert_eq!(diff.cells() + inter.cells(), a.cells());
        prop_assert_eq!(diff.overlap_cells(&b), 0);
        // Membership spot check across the bounding box.
        if let Some(bb) = union.bounding_box() {
            for c in bb.iter_cells().step_by(7) {
                let in_a = a.contains_point(c);
                let in_b = b.contains_point(c);
                prop_assert_eq!(union.contains_point(c), in_a || in_b);
                prop_assert_eq!(inter.contains_point(c), in_a && in_b);
                prop_assert_eq!(diff.contains_point(c), in_a && !in_b);
            }
        }
    }

    #[test]
    fn refine_coarsen_inverse_on_regions(boxes in arb_rect_list(5), r in 2i64..5) {
        let reg = Region::from_boxes(&boxes);
        // refine then coarsen is the identity on the cell set.
        let rt = reg.refine(r).coarsen(r);
        prop_assert!(rt.same_cells(&reg));
    }

    #[test]
    fn refine_scales_area(a in arb_rect(), r in 1i64..6) {
        prop_assert_eq!(a.refine(r).cells(), a.cells() * (r * r) as u64);
    }

    #[test]
    fn pairwise_overlap_is_symmetric(xs in arb_rect_list(6), ys in arb_rect_list(6)) {
        prop_assert_eq!(
            boxops::pairwise_overlap_cells(&xs, &ys),
            boxops::pairwise_overlap_cells(&ys, &xs)
        );
    }

    #[test]
    fn covers_iff_covered_cells_equal(a in arb_rect(), bs in arb_rect_list(6)) {
        let covered = boxops::covered_cells(&a, &bs);
        prop_assert_eq!(boxops::covers(&a, &bs), covered == a.cells());
        prop_assert!(covered <= a.cells());
    }

    #[test]
    fn morton_roundtrips(x in 0u64..100_000, y in 0u64..100_000) {
        prop_assert_eq!(morton_decode(morton_key(x, y)), (x, y));
    }

    #[test]
    fn hilbert_roundtrips(order in 1u32..10, xy in (0u64..1024, 0u64..1024)) {
        let n = 1u64 << order;
        let (x, y) = (xy.0 % n, xy.1 % n);
        let d = hilbert_key(order, x, y);
        prop_assert!(d < n * n);
        prop_assert_eq!(hilbert_decode(order, d), (x, y));
    }

    #[test]
    fn bisect_halves_tile_the_box(a in arb_rect()) {
        if let Some((l, r)) = a.bisect() {
            prop_assert_eq!(l.cells() + r.cells(), a.cells());
            prop_assert!(!l.intersects(&r));
            prop_assert!(a.contains_rect(&l) && a.contains_rect(&r));
            // Balanced within one slab.
            let axis = a.longest_axis();
            prop_assert!((l.len(axis) - r.len(axis)).abs() <= 1);
        } else {
            prop_assert_eq!(a.cells(), 1);
        }
    }
}
