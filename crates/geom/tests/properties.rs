//! Property-based tests for the geometry substrate.
//!
//! The box algebra underpins every measured quantity in the reproduction
//! (β_m is literally a sum of box intersections), so its invariants are
//! checked against brute-force cell enumeration on randomly generated
//! boxes — in 2-D and 3-D. On top of the axioms, the 2-D instantiation of
//! the dimension-generic code is pinned **bit-identically** to the
//! original hard-coded 2-D implementation (re-implemented here as an
//! oracle), so the `Point<D>`/`AABox<D>` refactor can never silently
//! change a 2-D result.

use proptest::prelude::*;
use samr_geom::boxops;
use samr_geom::sfc::{
    hilbert_decode, hilbert_decode_3d, hilbert_key, hilbert_key_3d, morton_decode,
    morton_decode_3d, morton_decodes, morton_decodes_3d, morton_decodes_3d_with,
    morton_decodes_with, morton_key, morton_key_3d, morton_keys, morton_keys_3d,
    morton_keys_3d_with, morton_keys_with, scalar, sfc_key_nd, sfc_keys_nd, BatchIsa, SfcCurve,
    MAX_ORDER, MAX_ORDER_3D,
};
use samr_geom::{Box3, Point2, Point3, Rect2, Region};

/// Strategy: a 2-D box with corners in [-40, 40] and extents in [1, 24].
fn arb_rect() -> impl Strategy<Value = Rect2> {
    (-40i64..40, -40i64..40, 1i64..24, 1i64..24)
        .prop_map(|(x, y, w, h)| Rect2::new(Point2::new(x, y), Point2::new(x + w - 1, y + h - 1)))
}

fn arb_rect_list(max: usize) -> impl Strategy<Value = Vec<Rect2>> {
    prop::collection::vec(arb_rect(), 1..max)
}

/// Strategy: a 3-D box with corners in [-12, 12] and extents in [1, 8].
fn arb_box3() -> impl Strategy<Value = Box3> {
    (
        (-12i64..12, -12i64..12, -12i64..12),
        (1i64..8, 1i64..8, 1i64..8),
    )
        .prop_map(|((x, y, z), (w, h, d))| {
            Box3::new(
                Point3::new(x, y, z),
                Point3::new(x + w - 1, y + h - 1, z + d - 1),
            )
        })
}

fn arb_box3_list(max: usize) -> impl Strategy<Value = Vec<Box3>> {
    prop::collection::vec(arb_box3(), 1..max)
}

/// Brute-force cell count of a union by membership testing over the
/// bounding box.
fn brute_union_cells(boxes: &[Rect2]) -> u64 {
    let bb = boxes
        .iter()
        .skip(1)
        .fold(boxes[0], |acc, b| acc.bounding_union(b));
    bb.iter_cells()
        .filter(|c| boxes.iter().any(|b| b.contains_point(*c)))
        .count() as u64
}

// ---------------------------------------------------------------------
// The legacy 2-D oracle: the original hard-coded implementations of the
// box algebra, kept verbatim so the generic code is provably
// bit-identical on D = 2.
// ---------------------------------------------------------------------

/// The original 2-D slab decomposition of `a \ b`, exactly as the
/// pre-refactor `boxops::subtract_into` computed it (Y slabs first, then
/// the X parts of the middle slab).
fn legacy_subtract(a: &Rect2, b: &Rect2) -> Vec<Rect2> {
    let mut out = Vec::new();
    let Some(ov) = a.intersect(b) else {
        out.push(*a);
        return out;
    };
    if ov == *a {
        return out;
    }
    if a.lo().y < ov.lo().y {
        out.push(Rect2::new(a.lo(), Point2::new(a.hi().x, ov.lo().y - 1)));
    }
    if a.hi().y > ov.hi().y {
        out.push(Rect2::new(Point2::new(a.lo().x, ov.hi().y + 1), a.hi()));
    }
    if a.lo().x < ov.lo().x {
        out.push(Rect2::new(
            Point2::new(a.lo().x, ov.lo().y),
            Point2::new(ov.lo().x - 1, ov.hi().y),
        ));
    }
    if a.hi().x > ov.hi().x {
        out.push(Rect2::new(
            Point2::new(ov.hi().x + 1, ov.lo().y),
            Point2::new(a.hi().x, ov.hi().y),
        ));
    }
    out
}

/// The original 2-D overlap count.
fn legacy_overlap_cells(a: &Rect2, b: &Rect2) -> u64 {
    let w = (a.hi().x.min(b.hi().x) - a.lo().x.max(b.lo().x) + 1).max(0) as u64;
    let h = (a.hi().y.min(b.hi().y) - a.lo().y.max(b.lo().y) + 1).max(0) as u64;
    w * h
}

/// The original 2-D perimeter count.
fn legacy_perimeter_cells(r: &Rect2) -> u64 {
    let e = r.extent();
    if e.x <= 2 || e.y <= 2 {
        r.cells()
    } else {
        r.cells() - ((e.x - 2) as u64) * ((e.y - 2) as u64)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // -----------------------------------------------------------------
    // 2-D axioms (unchanged from the 2-D era).
    // -----------------------------------------------------------------

    #[test]
    fn intersection_is_commutative_and_correct(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.overlap_cells(&b), b.overlap_cells(&a));
        match a.intersect(&b) {
            Some(i) => {
                prop_assert!(a.contains_rect(&i) && b.contains_rect(&i));
                prop_assert_eq!(i.cells(), a.overlap_cells(&b));
            }
            None => prop_assert_eq!(a.overlap_cells(&b), 0),
        }
    }

    #[test]
    fn subtraction_partitions_the_minuend(a in arb_rect(), b in arb_rect()) {
        let pieces = boxops::subtract(&a, &b);
        // Pieces are disjoint from b and from each other, stay inside a,
        // and together with a∩b tile a exactly.
        let mut total = 0u64;
        for (i, p) in pieces.iter().enumerate() {
            prop_assert!(a.contains_rect(p));
            prop_assert!(!p.intersects(&b));
            for q in &pieces[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
            total += p.cells();
        }
        prop_assert_eq!(total + a.overlap_cells(&b), a.cells());
    }

    #[test]
    fn disjointify_preserves_union_cells(boxes in arb_rect_list(8)) {
        let dis = boxops::disjointify(&boxes);
        for (i, p) in dis.iter().enumerate() {
            for q in &dis[i + 1..] {
                prop_assert!(!p.intersects(q), "{:?} vs {:?}", p, q);
            }
        }
        prop_assert_eq!(boxops::total_cells(&dis), brute_union_cells(&boxes));
    }

    #[test]
    fn coalesce_preserves_cells_and_disjointness(boxes in arb_rect_list(8)) {
        let dis = boxops::disjointify(&boxes);
        let merged = boxops::coalesce(&dis);
        prop_assert_eq!(boxops::total_cells(&merged), boxops::total_cells(&dis));
        for (i, p) in merged.iter().enumerate() {
            for q in &merged[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
        prop_assert!(merged.len() <= dis.len());
    }

    #[test]
    fn region_algebra_is_set_algebra(xs in arb_rect_list(6), ys in arb_rect_list(6)) {
        let a = Region::from_boxes(&xs);
        let b = Region::from_boxes(&ys);
        let union = a.union(&b);
        let inter = a.intersect(&b);
        let diff = a.subtract(&b);
        // |A ∪ B| = |A| + |B| - |A ∩ B|
        prop_assert_eq!(union.cells(), a.cells() + b.cells() - inter.cells());
        // A = (A \ B) ⊎ (A ∩ B)
        prop_assert_eq!(diff.cells() + inter.cells(), a.cells());
        prop_assert_eq!(diff.overlap_cells(&b), 0);
        // Membership spot check across the bounding box.
        if let Some(bb) = union.bounding_box() {
            for c in bb.iter_cells().step_by(7) {
                let in_a = a.contains_point(c);
                let in_b = b.contains_point(c);
                prop_assert_eq!(union.contains_point(c), in_a || in_b);
                prop_assert_eq!(inter.contains_point(c), in_a && in_b);
                prop_assert_eq!(diff.contains_point(c), in_a && !in_b);
            }
        }
    }

    #[test]
    fn refine_coarsen_inverse_on_regions(boxes in arb_rect_list(5), r in 2i64..5) {
        let reg = Region::from_boxes(&boxes);
        // refine then coarsen is the identity on the cell set.
        let rt = reg.refine(r).coarsen(r);
        prop_assert!(rt.same_cells(&reg));
    }

    #[test]
    fn refine_scales_area(a in arb_rect(), r in 1i64..6) {
        prop_assert_eq!(a.refine(r).cells(), a.cells() * (r * r) as u64);
    }

    #[test]
    fn pairwise_overlap_is_symmetric(xs in arb_rect_list(6), ys in arb_rect_list(6)) {
        prop_assert_eq!(
            boxops::pairwise_overlap_cells(&xs, &ys),
            boxops::pairwise_overlap_cells(&ys, &xs)
        );
    }

    #[test]
    fn covers_iff_covered_cells_equal(a in arb_rect(), bs in arb_rect_list(6)) {
        let covered = boxops::covered_cells(&a, &bs);
        prop_assert_eq!(boxops::covers(&a, &bs), covered == a.cells());
        prop_assert!(covered <= a.cells());
    }

    #[test]
    fn bisect_halves_tile_the_box(a in arb_rect()) {
        if let Some((l, r)) = a.bisect() {
            prop_assert_eq!(l.cells() + r.cells(), a.cells());
            prop_assert!(!l.intersects(&r));
            prop_assert!(a.contains_rect(&l) && a.contains_rect(&r));
            // Balanced within one slab.
            let axis = a.longest_axis();
            prop_assert!((l.len(axis) - r.len(axis)).abs() <= 1);
        } else {
            prop_assert_eq!(a.cells(), 1);
        }
    }

    // -----------------------------------------------------------------
    // D = 2 is pinned bit-identically to the legacy 2-D implementation.
    // -----------------------------------------------------------------

    #[test]
    fn generic_subtract_is_bit_identical_to_legacy_2d(a in arb_rect(), b in arb_rect()) {
        // Not merely the same cell set: the same pieces in the same order.
        prop_assert_eq!(boxops::subtract(&a, &b), legacy_subtract(&a, &b));
    }

    #[test]
    fn generic_counts_are_bit_identical_to_legacy_2d(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.overlap_cells(&b), legacy_overlap_cells(&a, &b));
        prop_assert_eq!(a.perimeter_cells(), legacy_perimeter_cells(&a));
        prop_assert_eq!(b.perimeter_cells(), legacy_perimeter_cells(&b));
    }

    #[test]
    fn generic_spatial_order_matches_legacy_2d_sort_key(boxes in arb_rect_list(8)) {
        let mut generic = boxes.clone();
        generic.sort_by(|a, b| a.cmp_spatial(b));
        let mut legacy = boxes.clone();
        legacy.sort_by_key(|r| (r.lo().y, r.lo().x, r.hi().y, r.hi().x));
        prop_assert_eq!(generic, legacy);
    }

    // -----------------------------------------------------------------
    // 3-D axioms: the same algebra, one dimension up.
    // -----------------------------------------------------------------

    #[test]
    fn intersection_axioms_hold_in_3d(a in arb_box3(), b in arb_box3()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.overlap_cells(&b), b.overlap_cells(&a));
        match a.intersect(&b) {
            Some(i) => {
                prop_assert!(a.contains_rect(&i) && b.contains_rect(&i));
                prop_assert_eq!(i.cells(), a.overlap_cells(&b));
            }
            None => prop_assert_eq!(a.overlap_cells(&b), 0),
        }
        // Containment is antisymmetric up to equality.
        if a.contains_rect(&b) && b.contains_rect(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn subtraction_partitions_the_minuend_3d(a in arb_box3(), b in arb_box3()) {
        let pieces = boxops::subtract(&a, &b);
        let mut total = 0u64;
        for (i, p) in pieces.iter().enumerate() {
            prop_assert!(a.contains_rect(p));
            prop_assert!(!p.intersects(&b));
            for q in &pieces[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
            total += p.cells();
        }
        prop_assert_eq!(total + a.overlap_cells(&b), a.cells());
        prop_assert!(pieces.len() <= 6, "a 3-D subtraction yields at most 6 slabs");
    }

    #[test]
    fn union_and_disjointify_agree_in_3d(boxes in arb_box3_list(5)) {
        let dis = boxops::disjointify(&boxes);
        for (i, p) in dis.iter().enumerate() {
            for q in &dis[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
        // Inclusion-exclusion against brute-force membership counting.
        let bb = boxes
            .iter()
            .skip(1)
            .fold(boxes[0], |acc, b| acc.bounding_union(b));
        let brute = bb
            .iter_cells()
            .filter(|c| boxes.iter().any(|b| b.contains_point(*c)))
            .count() as u64;
        prop_assert_eq!(boxops::union_cells(&boxes), brute);
        prop_assert_eq!(boxops::total_cells(&dis), brute);
    }

    #[test]
    fn volume_is_additive_under_split_3d(a in arb_box3()) {
        // Volume additivity under split: every axis, every interior cut.
        for axis in samr_geom::Axis::all::<3>() {
            if a.len(axis) < 2 {
                continue;
            }
            let c = a.lo().get(axis) + a.len(axis) / 2 - 1;
            let (l, r) = a.split_at(axis, c);
            prop_assert_eq!(l.cells() + r.cells(), a.cells());
            prop_assert!(!l.intersects(&r));
            prop_assert_eq!(l.bounding_union(&r), a);
        }
        // And under recursive bisection.
        if let Some((l, r)) = a.bisect() {
            prop_assert_eq!(l.cells() + r.cells(), a.cells());
        }
    }

    #[test]
    fn refine_scales_volume_3d(a in arb_box3(), r in 1i64..4) {
        prop_assert_eq!(a.refine(r).cells(), a.cells() * (r * r * r) as u64);
        prop_assert_eq!(a.refine(r).coarsen(r), a);
    }

    #[test]
    fn region_set_algebra_holds_in_3d(xs in arb_box3_list(4), ys in arb_box3_list(4)) {
        let a = Region::from_boxes(&xs);
        let b = Region::from_boxes(&ys);
        let union = a.union(&b);
        let inter = a.intersect(&b);
        let diff = a.subtract(&b);
        prop_assert_eq!(union.cells(), a.cells() + b.cells() - inter.cells());
        prop_assert_eq!(diff.cells() + inter.cells(), a.cells());
        prop_assert_eq!(diff.overlap_cells(&b), 0);
    }

    // -----------------------------------------------------------------
    // Space-filling curves: bijectivity, locality, stable order.
    // -----------------------------------------------------------------

    #[test]
    fn morton_roundtrips(x in 0u64..100_000, y in 0u64..100_000) {
        prop_assert_eq!(morton_decode(morton_key(x, y)), (x, y));
    }

    #[test]
    fn morton_3d_roundtrips(x in 0u64..100_000, y in 0u64..100_000, z in 0u64..100_000) {
        prop_assert_eq!(morton_decode_3d(morton_key_3d(x, y, z)), (x, y, z));
    }

    #[test]
    fn hilbert_roundtrips(order in 1u32..10, xy in (0u64..1024, 0u64..1024)) {
        let n = 1u64 << order;
        let (x, y) = (xy.0 % n, xy.1 % n);
        let d = hilbert_key(order, x, y);
        prop_assert!(d < n * n);
        prop_assert_eq!(hilbert_decode(order, d), (x, y));
    }

    #[test]
    fn hilbert_3d_roundtrips(order in 1u32..7, xyz in (0u64..128, 0u64..128, 0u64..128)) {
        let n = 1u64 << order;
        let (x, y, z) = (xyz.0 % n, xyz.1 % n, xyz.2 % n);
        let d = hilbert_key_3d(order, x, y, z);
        prop_assert!(d < n * n * n);
        prop_assert_eq!(hilbert_decode_3d(order, d), (x, y, z));
    }

    #[test]
    fn hilbert_locality_consecutive_keys_are_adjacent(order in 2u32..6, d in 0u64..4095) {
        // The Hilbert locality guarantee, both dimensions: consecutive
        // curve positions are face-adjacent cells, so cells that are
        // adjacent along the curve differ by exactly 1 in L1 distance.
        let n2 = 1u64 << (2 * order);
        let d2 = d % (n2 - 1);
        let a = hilbert_decode(order, d2);
        let b = hilbert_decode(order, d2 + 1);
        prop_assert_eq!(
            (a.0 as i64 - b.0 as i64).abs() + (a.1 as i64 - b.1 as i64).abs(),
            1
        );
        let n3 = 1u64 << (3 * order);
        let d3 = d % (n3 - 1);
        let a = hilbert_decode_3d(order, d3);
        let b = hilbert_decode_3d(order, d3 + 1);
        prop_assert_eq!(
            (a.0 as i64 - b.0 as i64).abs()
                + (a.1 as i64 - b.1 as i64).abs()
                + (a.2 as i64 - b.2 as i64).abs(),
            1
        );
    }

    #[test]
    fn morton_locality_adjacent_cells_bounded_key_distance(
        order in 2u32..8,
        xy in (0u64..255, 0u64..255),
    ) {
        // Morton's (weaker) locality bound: moving one cell along any
        // axis changes the key by less than the full curve length — and
        // the keys of an n x n block stay within [0, n^2). The same holds
        // one dimension up.
        let n = 1u64 << order;
        let (x, y) = (xy.0 % (n - 1), xy.1 % (n - 1));
        let k = morton_key(x, y);
        prop_assert!(k < n * n);
        prop_assert!(morton_key(x + 1, y).abs_diff(k) < n * n);
        prop_assert!(morton_key(x, y + 1).abs_diff(k) < n * n);
        let k3 = morton_key_3d(x, y, x);
        prop_assert!(k3 < n * n * n);
        prop_assert!(morton_key_3d(x + 1, y, x).abs_diff(k3) < n * n * n);
    }

    #[test]
    fn sfc_keys_are_a_stable_total_order(order in 2u32..6, seed in 0u64..1000) {
        // The keys induce a *total* order on cells: distinct cells always
        // get distinct keys (injectivity, for every curve and dimension),
        // so sorting by key is a stable, run-independent linearization.
        let n = 1u64 << order;
        let cells: Vec<(u64, u64, u64)> = (0..24)
            .map(|i| {
                let v = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                (v % n, (v >> 21) % n, (v >> 42) % n)
            })
            .collect();
        for (i, c) in cells.iter().enumerate() {
            for d in &cells[i + 1..] {
                if (c.0, c.1) != (d.0, d.1) {
                    prop_assert!(morton_key(c.0, c.1) != morton_key(d.0, d.1));
                    prop_assert!(
                        hilbert_key(order, c.0, c.1) != hilbert_key(order, d.0, d.1),
                        "2-D Hilbert collision for {:?} and {:?}", c, d
                    );
                }
                if c != d {
                    prop_assert!(morton_key_3d(c.0, c.1, c.2) != morton_key_3d(d.0, d.1, d.2));
                    prop_assert!(
                        hilbert_key_3d(order, c.0, c.1, c.2)
                            != hilbert_key_3d(order, d.0, d.1, d.2),
                        "3-D Hilbert collision for {:?} and {:?}", c, d
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // -----------------------------------------------------------------
    // The optimized public SFC paths are bit-identical to the retained
    // scalar reference implementations — across random u64 inputs and
    // every supported order, in both dimensions. The optimizations
    // (PDEP/PEXT Morton, branchless Hilbert rotation, interleave-based
    // transpose packing) are only admissible because of these.
    // -----------------------------------------------------------------

    #[test]
    fn optimized_morton_matches_scalar(x in any::<u64>(), y in any::<u64>(), k in any::<u64>()) {
        // 2-D: both paths read exactly the low 32 bits of each axis, so
        // the whole u64 range is in scope; likewise every key bit on
        // decode.
        let (x2, y2) = (x & 0xffff_ffff, y & 0xffff_ffff);
        prop_assert_eq!(morton_key(x2, y2), scalar::morton_key(x2, y2));
        prop_assert_eq!(morton_decode(k), scalar::morton_decode(k));
        // 3-D over the documented 21-bit axis / 63-bit key domain.
        let m = (1u64 << MAX_ORDER_3D) - 1;
        let (x3, y3, z3) = (x & m, y & m, (x ^ y) & m);
        let key = morton_key_3d(x3, y3, z3);
        prop_assert_eq!(key, scalar::morton_key_3d(x3, y3, z3));
        let k3 = k & ((1u64 << (3 * MAX_ORDER_3D)) - 1);
        prop_assert_eq!(morton_decode_3d(k3), scalar::morton_decode_3d(k3));
    }

    #[test]
    fn batch_morton_kernels_match_scalar_map(
        tuples in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..64),
        raw_keys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        // The BMI2 batch kernels are admissible only as an exact map of
        // the scalar references over the slice — same domains as the
        // per-key tests above.
        let m3 = (1u64 << MAX_ORDER_3D) - 1;
        let c2: Vec<[u64; 2]> = tuples
            .iter()
            .map(|&(x, y, _)| [x & 0xffff_ffff, y & 0xffff_ffff])
            .collect();
        let c3: Vec<[u64; 3]> = tuples.iter().map(|&(x, y, z)| [x & m3, y & m3, z & m3]).collect();
        let k3: Vec<u64> = raw_keys
            .iter()
            .map(|&k| k & ((1u64 << (3 * MAX_ORDER_3D)) - 1))
            .collect();

        let mut keys = Vec::new();
        morton_keys(&c2, &mut keys);
        let want: Vec<u64> = c2.iter().map(|c| scalar::morton_key(c[0], c[1])).collect();
        prop_assert_eq!(&keys, &want);

        morton_keys_3d(&c3, &mut keys);
        let want: Vec<u64> = c3.iter().map(|c| scalar::morton_key_3d(c[0], c[1], c[2])).collect();
        prop_assert_eq!(&keys, &want);

        let mut pairs = Vec::new();
        morton_decodes(&raw_keys, &mut pairs);
        let want: Vec<[u64; 2]> = raw_keys
            .iter()
            .map(|&k| { let (x, y) = scalar::morton_decode(k); [x, y] })
            .collect();
        prop_assert_eq!(&pairs, &want);

        let mut triples = Vec::new();
        morton_decodes_3d(&k3, &mut triples);
        let want: Vec<[u64; 3]> = k3
            .iter()
            .map(|&k| { let (x, y, z) = scalar::morton_decode_3d(k); [x, y, z] })
            .collect();
        prop_assert_eq!(&triples, &want);
    }

    #[test]
    fn batch_kernels_bit_identical_on_every_tier(
        tuples in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..64),
        raw_keys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        // Force every tier this CPU executes — BMI2, AVX2, and the
        // always-available scalar fallback — through the same `*_with`
        // entry points and hold each one to the scalar-map oracle. On a
        // BMI2 machine `detect()` never picks AVX2 or Scalar, so this
        // is the only wall standing between those tiers and silent rot.
        let m3 = (1u64 << MAX_ORDER_3D) - 1;
        let c2: Vec<[u64; 2]> = tuples
            .iter()
            .map(|&(x, y, _)| [x & 0xffff_ffff, y & 0xffff_ffff])
            .collect();
        let c3: Vec<[u64; 3]> = tuples.iter().map(|&(x, y, z)| [x & m3, y & m3, z & m3]).collect();
        let k3: Vec<u64> = raw_keys
            .iter()
            .map(|&k| k & ((1u64 << (3 * MAX_ORDER_3D)) - 1))
            .collect();
        let want2: Vec<u64> = c2.iter().map(|c| scalar::morton_key(c[0], c[1])).collect();
        let want3: Vec<u64> = c3.iter().map(|c| scalar::morton_key_3d(c[0], c[1], c[2])).collect();
        let wantd2: Vec<[u64; 2]> = raw_keys
            .iter()
            .map(|&k| { let (x, y) = scalar::morton_decode(k); [x, y] })
            .collect();
        let wantd3: Vec<[u64; 3]> = k3
            .iter()
            .map(|&k| { let (x, y, z) = scalar::morton_decode_3d(k); [x, y, z] })
            .collect();
        for isa in BatchIsa::ALL.into_iter().filter(|i| i.is_available()) {
            let mut keys = Vec::new();
            morton_keys_with(isa, &c2, &mut keys);
            prop_assert_eq!(&keys, &want2, "2-D encode diverged on {:?}", isa);
            morton_keys_3d_with(isa, &c3, &mut keys);
            prop_assert_eq!(&keys, &want3, "3-D encode diverged on {:?}", isa);
            let mut pairs = Vec::new();
            morton_decodes_with(isa, &raw_keys, &mut pairs);
            prop_assert_eq!(&pairs, &wantd2, "2-D decode diverged on {:?}", isa);
            let mut triples = Vec::new();
            morton_decodes_3d_with(isa, &k3, &mut triples);
            prop_assert_eq!(&triples, &wantd3, "3-D decode diverged on {:?}", isa);
        }
    }

    #[test]
    fn sfc_keys_nd_matches_per_key_map(
        tuples in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..48),
        order2 in 1u32..=MAX_ORDER,
        order3 in 1u32..=MAX_ORDER_3D,
    ) {
        // The batch entry the partitioner's unit-ordering pass feeds must
        // be an exact map of the per-key dispatch — both curves, both
        // dimensions, every order (Hilbert's batched transpose+Morton
        // packing included).
        for curve in [SfcCurve::Morton, SfcCurve::Hilbert] {
            let mask2 = (1u64 << order2) - 1;
            let c2: Vec<[u64; 2]> = tuples
                .iter()
                .map(|&(x, y, _)| [x & mask2, y & mask2])
                .collect();
            let mut keys = Vec::new();
            sfc_keys_nd(curve, order2, &c2, &mut keys);
            let want: Vec<u64> = c2.iter().map(|&c| sfc_key_nd(curve, order2, c)).collect();
            prop_assert_eq!(&keys, &want, "2-D {:?} order {}", curve, order2);
            let mask3 = (1u64 << order3) - 1;
            let c3: Vec<[u64; 3]> = tuples
                .iter()
                .map(|&(x, y, z)| [x & mask3, y & mask3, z & mask3])
                .collect();
            sfc_keys_nd(curve, order3, &c3, &mut keys);
            let want: Vec<u64> = c3.iter().map(|&c| sfc_key_nd(curve, order3, c)).collect();
            prop_assert_eq!(&keys, &want, "3-D {:?} order {}", curve, order3);
        }
    }

    #[test]
    fn optimized_hilbert_2d_matches_scalar(
        order in 1u32..=MAX_ORDER,
        x in any::<u64>(),
        y in any::<u64>(),
        d in any::<u64>(),
    ) {
        let mask = (1u64 << order) - 1;
        let (x, y) = (x & mask, y & mask);
        prop_assert_eq!(
            hilbert_key(order, x, y),
            scalar::hilbert_key(order, x, y),
            "encode diverged at order {}", order
        );
        // Decode reads only the low 2·order bits either way: the full
        // u64 key range is in scope.
        prop_assert_eq!(
            hilbert_decode(order, d),
            scalar::hilbert_decode(order, d),
            "decode diverged at order {}", order
        );
    }

    #[test]
    fn optimized_hilbert_3d_matches_scalar(
        order in 1u32..=MAX_ORDER_3D,
        x in any::<u64>(),
        y in any::<u64>(),
        z in any::<u64>(),
        d in any::<u64>(),
    ) {
        let mask = (1u64 << order) - 1;
        let (x, y, z) = (x & mask, y & mask, z & mask);
        prop_assert_eq!(
            hilbert_key_3d(order, x, y, z),
            scalar::hilbert_key_3d(order, x, y, z),
            "encode diverged at order {}", order
        );
        // Stray key bits at or above 3·order are dropped identically by
        // both unpackings, so the full u64 key range is in scope.
        prop_assert_eq!(
            hilbert_decode_3d(order, d),
            scalar::hilbert_decode_3d(order, d),
            "decode diverged at order {}", order
        );
    }
}

/// Pinned key values: the 2-D curves must produce the exact historical
/// keys forever (partial-order bucketing and chunk boundaries depend on
/// them), and the 3-D curves are pinned from their first release so any
/// accidental change to the bit manipulation is caught.
#[test]
fn sfc_key_values_are_pinned() {
    assert_eq!(morton_key(3, 5), 0b100111);
    assert_eq!(hilbert_key(3, 5, 2), 55);
    assert_eq!(hilbert_key(4, 10, 10), 136);
    assert_eq!(morton_key_3d(1, 2, 3), 0b110101);
    let h3: Vec<u64> = (0..8)
        .map(|i| hilbert_key_3d(1, i & 1, (i >> 1) & 1, (i >> 2) & 1))
        .collect();
    let mut sorted = h3.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (0..8).collect::<Vec<u64>>(),
        "order-1 curve visits all octants"
    );
    assert_eq!(hilbert_key_3d(1, 0, 0, 0), 0, "curve starts at the origin");
}
