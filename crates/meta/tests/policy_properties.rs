//! Property-based tests on the adaptive repartitioning policy layer.

use proptest::prelude::*;
use samr_geom::{Point2, Rect2};
use samr_grid::GridHierarchy;
use samr_meta::{AdaptiveConfig, AdaptivePolicy};
use samr_partition::{DomainSfcPartitioner, Partitioner, PartitionerChoice};
use samr_sim::migration::naive_migration_cells;
use samr_sim::policy::PartitionPolicy;
use samr_sim::{simulate_policy_source_stats, simulate_source_stats, MachineModel, SimConfig};
use samr_trace::{HierarchyTrace, MemorySource, Snapshot, TraceMeta};

fn meta() -> TraceMeta<2> {
    TraceMeta {
        app: "SYN".into(),
        description: "property trace".into(),
        base_domain: Rect2::from_extents(32, 32),
        ratio: 2,
        max_levels: 4,
        regrid_interval: 1,
        min_block: 2,
        seed: 0,
    }
}

fn trace_from_levels(levels_per_step: Vec<Vec<Vec<Rect2>>>) -> HierarchyTrace<2> {
    let mut t = HierarchyTrace::new(meta());
    for (i, levels) in levels_per_step.into_iter().enumerate() {
        t.push(Snapshot {
            step: i as u32,
            time: i as f64,
            hierarchy: GridHierarchy::from_level_rects(Rect2::from_extents(32, 32), 2, &levels),
        });
    }
    t
}

/// One snapshot's level rectangles: a moving refined blob, optionally
/// carrying a second nested level.
fn arb_levels() -> impl Strategy<Value = Vec<Vec<Rect2>>> {
    let blob = (2i64..20, 2i64..20, 2i64..10, 2i64..10);
    (blob, any::<bool>()).prop_map(|((x, y, w, h), deep)| {
        let l1 = Rect2::new(
            Point2::new(x, y),
            Point2::new((x + w).min(31), (y + h).min(31)),
        )
        .refine(2);
        let mut levels = vec![vec![], vec![l1]];
        if deep {
            if let Some(inner) = l1.shrink(2) {
                if inner.extent().x >= 2 && inner.extent().y >= 2 {
                    levels.push(vec![inner.refine(2)]);
                }
            }
        }
        levels
    })
}

fn arb_trace() -> impl Strategy<Value = HierarchyTrace<2>> {
    prop::collection::vec(arb_levels(), 2..10).prop_map(trace_from_levels)
}

/// A two-regime trace with a randomized phase boundary and singularity
/// position: spread shallow refinement, then a deeply nested near-point
/// feature that a domain cut cannot split.
fn arb_phase_change() -> impl Strategy<Value = HierarchyTrace<2>> {
    (4u32..16, 0i64..28).prop_map(|(steps, corner)| {
        let mut per_step = Vec::new();
        for i in 0..steps {
            let levels = if i < steps / 2 {
                vec![
                    vec![],
                    vec![Rect2::from_coords(0, 0, 27 + (i as i64 % 4), 27)],
                    vec![],
                    vec![],
                ]
            } else {
                let l1 = Rect2::from_coords(corner, corner, corner + 1, corner + 1);
                let l2 = l1.refine(2);
                let l3 = l2.refine(2);
                vec![vec![], vec![l1], vec![l2], vec![l3]]
            };
            per_step.push(levels);
        }
        trace_from_levels(per_step)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// With thresholds that can never fire, the adaptive policy is
    /// *exactly* the static policy over its local partitioner — same
    /// per-step metrics, same total, no switch events — at every window
    /// size.
    #[test]
    fn never_thresholds_reduce_to_static(
        t in arb_trace(),
        nprocs in 2usize..12,
        window in 1usize..8,
    ) {
        let cfg = SimConfig { nprocs, ..SimConfig::default() };
        let mut policy = AdaptivePolicy::<2>::new(
            Box::new(DomainSfcPartitioner::default()),
            AdaptiveConfig::never(),
        );
        let (adaptive, stats) = simulate_policy_source_stats(
            &mut MemorySource::new(&t), &mut policy, &cfg, window,
        ).unwrap();
        let (stat, _) = simulate_source_stats(
            &mut MemorySource::new(&t),
            &DomainSfcPartitioner::default(),
            &cfg,
            window,
        ).unwrap();
        prop_assert!(stats.switch_events.is_empty());
        prop_assert_eq!(adaptive.steps, stat.steps);
        prop_assert_eq!(adaptive.total_time, stat.total_time);
    }

    /// Every committed switch charges at least the all-pairs
    /// moved-volume oracle between the old partitioner's distribution of
    /// the previous snapshot and the new partitioner's distribution of
    /// the switch snapshot. (Vacuously true on traces where no switch
    /// fires.)
    #[test]
    fn switch_charges_meet_the_moved_volume_oracle(
        t in arb_phase_change(),
        nprocs in 8usize..24,
    ) {
        let cfg = SimConfig {
            nprocs,
            machine: MachineModel::slow_cpu(),
            ..SimConfig::default()
        };
        let acfg = AdaptiveConfig::eager();
        let mut policy = AdaptivePolicy::<2>::new(
            Box::new(DomainSfcPartitioner::default()),
            acfg,
        );
        let (res, stats) = simulate_policy_source_stats(
            &mut MemorySource::new(&t), &mut policy, &cfg, 1,
        ).unwrap();
        let by_name = |name: &str| -> Box<dyn Partitioner<2> + Sync> {
            if name == Partitioner::<2>::name(&DomainSfcPartitioner::default()) {
                Box::new(DomainSfcPartitioner::default())
            } else {
                assert_eq!(name, acfg.balanced.name());
                acfg.balanced.boxed::<2>()
            }
        };
        for ev in &stats.switch_events {
            prop_assert!(ev.step >= 1, "the first snapshot has no predecessor to switch from");
            let prev = &t.snapshots[ev.step as usize - 1];
            let cur = &t.snapshots[ev.step as usize];
            let prev_part = by_name(&ev.from).partition(&prev.hierarchy, cfg.nprocs);
            let cur_part = by_name(&ev.to).partition(&cur.hierarchy, cfg.nprocs);
            let oracle =
                naive_migration_cells(&prev.hierarchy, &prev_part, &cur.hierarchy, &cur_part);
            prop_assert!(
                ev.migration_cells >= oracle,
                "switch at step {} charged {} < oracle {}",
                ev.step, ev.migration_cells, oracle
            );
            let step = res.steps.iter().find(|s| s.step == ev.step).unwrap();
            prop_assert_eq!(step.migration_cells, ev.migration_cells);
        }
    }

    /// The policy's reported name always names both partitioners, and the
    /// starting mode is the local one.
    #[test]
    fn fresh_policy_starts_local(family in 0usize..3) {
        let choice = [
            PartitionerChoice::domain_sfc(),
            PartitionerChoice::patch(),
            PartitionerChoice::hybrid(),
        ][family];
        let policy = AdaptivePolicy::<2>::new(
            Box::new(DomainSfcPartitioner::default()),
            AdaptiveConfig { balanced: choice, ..AdaptiveConfig::balance() },
        );
        prop_assert_eq!(
            policy.current().name(),
            Partitioner::<2>::name(&DomainSfcPartitioner::default())
        );
        prop_assert!(policy.name().contains(&choice.boxed::<2>().name()));
    }
}
