//! # samr-meta — the adaptive meta-partitioner
//!
//! "The goal of the adaptive meta-partitioner is to provide [adaptive
//! run-time management] for parallel SAMR applications": select and
//! configure the most appropriate partitioning technique at run time,
//! based on the current application and system state (Figure 2 of the
//! paper). The classification model of `samr-core` supplies the state as
//! a continuous point `(d1, d2, d3)`; this crate supplies:
//!
//! - [`selector`]: the mapping from classification point to partitioner
//!   selection *and configuration* — coarse-grained family choice plus
//!   fine-grained parameter steering, with hysteresis against thrashing;
//! - [`meta`]: [`meta::MetaPartitioner`], a stateful
//!   [`samr_partition::Partitioner`] that re-classifies at every
//!   invocation and delegates to the selected technique;
//! - [`compare`]: the experiment driver comparing every *static*
//!   partitioner choice against the dynamic meta-partitioner on a trace —
//!   the proof-of-concept claim (§1/§3: even simple dynamic selection
//!   reduces execution times) made reproducible;
//! - [`policy`]: adaptive repartitioning policies — the
//!   [`samr_sim::policy::PartitionPolicy`] implementations that switch
//!   the partitioner *mid-run* when observed imbalance or communication
//!   crosses a hysteresis threshold, paying the switch's migration bill.

#![warn(missing_docs)]

pub mod compare;
pub mod meta;
pub mod octant_meta;
pub mod policy;
pub mod selector;

pub use compare::{compare_on_sources, compare_on_trace, ComparisonResult};
pub use meta::MetaPartitioner;
pub use octant_meta::OctantMetaPartitioner;
pub use policy::{adaptive_presets, AdaptiveConfig, AdaptivePolicy};
pub use selector::{PartitionerChoice, PatienceGate, Selector, SelectorConfig};
