//! Adaptive repartitioning policies — time-varying partitioner selection
//! driven by *observed* per-step metrics.
//!
//! The meta-partitioner ([`crate::MetaPartitioner`]) re-classifies the
//! hierarchy before every partitioning, but it still decides from the
//! *predicted* state. An [`AdaptivePolicy`] closes the loop the other
//! way, in the spirit of D'Angelo's self-clustering adaptive
//! repartitioning: it watches the metrics the simulator actually
//! measured — load imbalance, grid-relative communication — and switches
//! between two configured partitioners when a metric crosses a threshold
//! for enough consecutive snapshots. Switching is never free: the
//! streaming driver forces the next snapshot to repartition under the
//! new partitioner and charges that step's full migration volume (see
//! [`samr_sim::policy`]).
//!
//! Two guards keep the policy from thrashing, both *reused* from the
//! selector rather than re-implemented: the enter/exit thresholds form a
//! hysteresis band (switching to the balanced partitioner at
//! `imbalance_enter` but only back at the lower `imbalance_exit`, the
//! same anti-flapping idea as [`SelectorConfig::hysteresis`]), and the
//! consecutive-vote requirement is the selector's own
//! [`PatienceGate`] (the [`SelectorConfig::switch_patience`] mechanism).

use crate::selector::{PatienceGate, SelectorConfig};
use samr_partition::{Partitioner, PartitionerChoice};
use samr_sim::policy::PolicySwitch;
pub use samr_sim::policy::{PartitionPolicy, StaticPolicy, SwitchEvent};
use samr_sim::StepMetrics;
use serde::{Deserialize, Serialize};

/// Thresholds and knobs of one [`AdaptivePolicy`].
///
/// The policy runs a two-mode state machine over the scenario's own
/// partitioner (the *local* mode — whatever the scenario configured,
/// typically the communication-optimal choice) and a *balanced*
/// fallback:
///
/// - in local mode, observing `load_imbalance >= imbalance_enter` votes
///   to switch to the balanced partitioner;
/// - in balanced mode, observing `load_imbalance <= imbalance_exit`
///   (the imbalance episode has passed) **or** `rel_comm >= comm_enter`
///   (the balanced cut's communication bill outgrew its balance win)
///   votes to switch back;
/// - a switch commits only after `switch_patience` consecutive votes
///   (the selector's [`PatienceGate`]); any non-voting step resets the
///   count.
///
/// `imbalance_exit < imbalance_enter` is the hysteresis band: between
/// the two thresholds the policy holds its current mode, so a metric
/// oscillating around one threshold cannot flap the partitioner.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Load imbalance (max/avg, 1.0 = perfect) at which local mode votes
    /// for the balanced partitioner.
    pub imbalance_enter: f64,
    /// Load imbalance at or below which balanced mode votes to return to
    /// the local partitioner. Keep strictly below `imbalance_enter`.
    pub imbalance_exit: f64,
    /// Grid-relative communication at which balanced mode votes to
    /// return to the local partitioner regardless of balance.
    pub comm_enter: f64,
    /// Consecutive agreeing votes required before a switch commits —
    /// the same knob as [`SelectorConfig::switch_patience`].
    pub switch_patience: usize,
    /// The balance-first partitioner the policy falls back to (the
    /// presets use per-level patch-based balancing — the one family
    /// that can split a deeply nested point feature a domain cut must
    /// hand to a single processor).
    pub balanced: PartitionerChoice,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self::balance()
    }
}

impl AdaptiveConfig {
    /// The default preset: switch when imbalance clearly hurts, with the
    /// selector's default patience.
    pub fn balance() -> Self {
        Self {
            imbalance_enter: 1.35,
            imbalance_exit: 1.15,
            comm_enter: 0.9,
            switch_patience: SelectorConfig::default().switch_patience,
            balanced: PartitionerChoice::patch(),
        }
    }

    /// Hair-trigger preset: a single bad snapshot switches. Wins fast on
    /// clean phase changes, thrashes on noisy workloads.
    pub fn eager() -> Self {
        Self {
            imbalance_enter: 1.2,
            imbalance_exit: 1.08,
            comm_enter: 0.9,
            switch_patience: 1,
            balanced: PartitionerChoice::patch(),
        }
    }

    /// Conservative preset: higher thresholds and twice the default
    /// patience — switches only for sustained, severe imbalance.
    pub fn patient() -> Self {
        Self {
            imbalance_enter: 1.6,
            imbalance_exit: 1.2,
            comm_enter: 0.95,
            switch_patience: 2 * SelectorConfig::default().switch_patience,
            balanced: PartitionerChoice::patch(),
        }
    }

    /// Thresholds that can never fire: [`AdaptivePolicy`] under this
    /// config is exactly a static policy (property-tested). Useful as
    /// the identity element when sweeping policy axes.
    pub fn never() -> Self {
        Self {
            imbalance_enter: f64::INFINITY,
            imbalance_exit: f64::NEG_INFINITY,
            comm_enter: f64::INFINITY,
            switch_patience: 1,
            balanced: PartitionerChoice::patch(),
        }
    }
}

/// The named adaptive presets, in presentation order — the source of the
/// `samr partitioners` listing and the engine's `adaptive:NAME` policy
/// slugs.
pub fn adaptive_presets() -> Vec<(&'static str, AdaptiveConfig)> {
    vec![
        ("balance", AdaptiveConfig::balance()),
        ("eager", AdaptiveConfig::eager()),
        ("patient", AdaptiveConfig::patient()),
    ]
}

/// Which of the policy's two partitioners is in charge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Local,
    Balanced,
}

/// A two-mode adaptive repartitioning policy over observed metrics; see
/// [`AdaptiveConfig`] for the state machine and its guards.
pub struct AdaptivePolicy<const D: usize> {
    cfg: AdaptiveConfig,
    local: Box<dyn Partitioner<D> + Send + Sync>,
    balanced: Box<dyn Partitioner<D> + Send + Sync>,
    mode: Mode,
    gate: PatienceGate<Mode>,
}

impl<const D: usize> AdaptivePolicy<D> {
    /// A policy starting in local mode on `local` (the scenario's own
    /// partitioner — stateful selectors work too), with the balanced
    /// fallback built from `cfg.balanced`.
    pub fn new(local: Box<dyn Partitioner<D> + Send + Sync>, cfg: AdaptiveConfig) -> Self {
        Self {
            local,
            balanced: cfg.balanced.boxed::<D>(),
            cfg,
            mode: Mode::Local,
            gate: PatienceGate::new(),
        }
    }

    /// The policy's thresholds.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }
}

impl<const D: usize> PartitionPolicy<D> for AdaptivePolicy<D> {
    fn name(&self) -> String {
        format!("adaptive({} | {})", self.local.name(), self.balanced.name())
    }

    fn current(&self) -> &(dyn Partitioner<D> + Sync) {
        match self.mode {
            Mode::Local => self.local.as_ref(),
            Mode::Balanced => self.balanced.as_ref(),
        }
    }

    fn observe(&mut self, m: &StepMetrics) -> Option<PolicySwitch> {
        let want = match self.mode {
            Mode::Local if m.load_imbalance >= self.cfg.imbalance_enter => Mode::Balanced,
            Mode::Balanced
                if m.load_imbalance <= self.cfg.imbalance_exit
                    || m.rel_comm >= self.cfg.comm_enter =>
            {
                Mode::Local
            }
            _ => {
                // The current mode is re-affirmed: votes must be
                // consecutive, exactly as in the selector.
                self.gate.reset();
                return None;
            }
        };
        if !self.gate.vote(want, self.cfg.switch_patience) {
            return None;
        }
        let from = self.current().name();
        self.mode = want;
        Some(PolicySwitch {
            from,
            to: self.current().name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;
    use samr_grid::GridHierarchy;
    use samr_partition::DomainSfcPartitioner;
    use samr_sim::migration::naive_migration_cells;
    use samr_sim::{
        simulate_policy_source_stats, simulate_source_stats, simulate_trace, SimConfig,
    };
    use samr_trace::{HierarchyTrace, MemorySource, Snapshot, TraceMeta};

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    /// A two-regime trace: a broad, well-spread shallow refinement for
    /// the first half, then a deeply nested point singularity — the
    /// subtree under two base cells carries so much workload that any
    /// domain cut must hand it to one processor, while per-level
    /// balancing can split the fine levels.
    fn phase_change_trace(steps: u32) -> HierarchyTrace<2> {
        let meta = TraceMeta {
            app: "SYN".into(),
            description: "two-regime".into(),
            base_domain: Rect2::from_extents(32, 32),
            ratio: 2,
            max_levels: 4,
            regrid_interval: 1,
            min_block: 2,
            seed: 0,
        };
        let mut t = HierarchyTrace::new(meta);
        for i in 0..steps {
            let levels = if i < steps / 2 {
                // Spread: most of the domain refined one level.
                vec![
                    vec![],
                    vec![r(0, 0, 27 + (i as i64 % 4), 27)],
                    vec![],
                    vec![],
                ]
            } else {
                // Point singularity: three nested levels over a 2x2
                // base-cell corner.
                let l1 = r(0, 0, 1, 1);
                let l2 = l1.refine(2);
                let l3 = l2.refine(2);
                vec![vec![], vec![l1], vec![l2], vec![l3]]
            };
            t.push(Snapshot {
                step: i,
                time: i as f64,
                hierarchy: GridHierarchy::from_level_rects(Rect2::from_extents(32, 32), 2, &levels),
            });
        }
        t
    }

    /// Compute-bound machine: the setting where paying communication for
    /// balance is the right trade, so adaptation has something to win.
    fn cfg() -> SimConfig {
        SimConfig {
            nprocs: 16,
            machine: samr_sim::MachineModel::slow_cpu(),
            ..SimConfig::default()
        }
    }

    #[test]
    fn never_config_is_exactly_static() {
        let t = phase_change_trace(12);
        let cfg = cfg();
        let mut policy = AdaptivePolicy::<2>::new(
            Box::new(DomainSfcPartitioner::default()),
            AdaptiveConfig::never(),
        );
        let (adaptive, stats) =
            simulate_policy_source_stats(&mut MemorySource::new(&t), &mut policy, &cfg, 1).unwrap();
        let (stat, _) = simulate_source_stats(
            &mut MemorySource::new(&t),
            &DomainSfcPartitioner::default(),
            &cfg,
            1,
        )
        .unwrap();
        assert!(stats.switch_events.is_empty());
        assert_eq!(adaptive.steps, stat.steps);
        assert_eq!(adaptive.total_time, stat.total_time);
    }

    #[test]
    fn imbalance_episode_switches_and_is_charged() {
        let t = phase_change_trace(16);
        let cfg = cfg();
        // Sixteen processors over a point singularity: the domain cut's
        // imbalance spikes in the second regime.
        let mut policy = AdaptivePolicy::<2>::new(
            Box::new(DomainSfcPartitioner::default()),
            AdaptiveConfig::eager(),
        );
        let (res, stats) =
            simulate_policy_source_stats(&mut MemorySource::new(&t), &mut policy, &cfg, 1).unwrap();
        assert!(
            !stats.switch_events.is_empty(),
            "the phase change must trigger at least one switch"
        );
        assert_eq!(stats.switches(), stats.switch_events.len());
        for ev in &stats.switch_events {
            // The switch step's metrics carry its charge.
            let step = res.steps.iter().find(|s| s.step == ev.step).unwrap();
            assert_eq!(step.migration_cells, ev.migration_cells);
            assert_eq!(step.partition_cost, ev.partition_cost);
            assert!(ev.partition_cost > 0.0, "a switch step never reuses");
        }
    }

    #[test]
    fn switch_charge_meets_the_moved_volume_oracle() {
        // Every switch event's charged migration is at least the
        // all-pairs moved-volume oracle between the distributions the
        // old and new partitioners produce on the surrounding snapshots.
        // (Partitioners are pure functions of the hierarchy, and the
        // driver forces a repartition on switch steps, so the effective
        // partitions are reconstructible from the event's names.)
        let t = phase_change_trace(16);
        let cfg = cfg();
        let local = DomainSfcPartitioner::default();
        let acfg = AdaptiveConfig::eager();
        let mut policy = AdaptivePolicy::<2>::new(Box::new(local), acfg);
        let (_, stats) =
            simulate_policy_source_stats(&mut MemorySource::new(&t), &mut policy, &cfg, 1).unwrap();
        assert!(!stats.switch_events.is_empty());
        let by_name = |name: &str| -> Box<dyn samr_partition::Partitioner<2> + Sync> {
            if name == Partitioner::<2>::name(&DomainSfcPartitioner::default()) {
                Box::new(DomainSfcPartitioner::default())
            } else {
                assert_eq!(name, acfg.balanced.name());
                acfg.balanced.boxed::<2>()
            }
        };
        for ev in &stats.switch_events {
            let prev = &t.snapshots[ev.step as usize - 1];
            let cur = &t.snapshots[ev.step as usize];
            let prev_part = by_name(&ev.from).partition(&prev.hierarchy, cfg.nprocs);
            let cur_part = by_name(&ev.to).partition(&cur.hierarchy, cfg.nprocs);
            let oracle =
                naive_migration_cells(&prev.hierarchy, &prev_part, &cur.hierarchy, &cur_part);
            assert!(
                ev.migration_cells >= oracle,
                "switch at step {} charged {} < oracle {}",
                ev.step,
                ev.migration_cells,
                oracle
            );
            assert!(oracle > 0, "a real switch moves data");
        }
    }

    #[test]
    fn adaptation_beats_static_local_on_the_phase_change() {
        // The point of the exercise: on a two-regime trace the adaptive
        // policy's total estimated time beats staying on the local
        // partitioner for the whole run, even with the switch charged.
        let t = phase_change_trace(24);
        let cfg = cfg();
        let static_run = simulate_trace(&t, &DomainSfcPartitioner::default(), &cfg);
        let mut policy = AdaptivePolicy::<2>::new(
            Box::new(DomainSfcPartitioner::default()),
            AdaptiveConfig::balance(),
        );
        let (adaptive, stats) =
            simulate_policy_source_stats(&mut MemorySource::new(&t), &mut policy, &cfg, 1).unwrap();
        assert!(stats.switches() >= 1);
        assert!(
            adaptive.total_time < static_run.total_time,
            "adaptive {} should beat static {}",
            adaptive.total_time,
            static_run.total_time
        );
    }

    #[test]
    fn presets_are_named_and_ordered() {
        let presets = adaptive_presets();
        let names: Vec<&str> = presets.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["balance", "eager", "patient"]);
        for (_, c) in &presets {
            assert!(c.imbalance_exit < c.imbalance_enter, "hysteresis band");
            assert!(c.switch_patience >= 1);
        }
        assert_eq!(AdaptiveConfig::default(), AdaptiveConfig::balance());
    }
}
