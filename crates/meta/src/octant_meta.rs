//! The legacy baseline: octant-approach-driven partitioner selection.
//!
//! §3 of the paper describes the octant approach — a *discrete, relative*
//! classification cube whose octants map onto partitioning techniques —
//! and argues it is inadequate (the time-domination axis is circular, the
//! activity-dynamics axis conflates regrid frequency with cost, and
//! discrete transitions preclude fine-grained configuration). ArMADA
//! implemented it anyway and still reduced execution times, which is the
//! proof of concept the meta-partitioner stands on.
//!
//! This module makes the baseline runnable so the continuous selector can
//! be compared against it: an ArMADA-style classifier (box operations
//! only, relative to the previous state) feeding the published
//! octant-to-family mapping.

use parking_lot::Mutex;
use samr_core::octant::{ArmadaClassifier, Octant};
use samr_grid::GridHierarchy;
use samr_partition::{
    DomainSfcParams, DomainSfcPartitioner, HybridParams, HybridPartitioner, Partition, Partitioner,
    PatchParams, PatchPartitioner,
};

/// Octant-approach baseline partitioner: classifies each hierarchy into a
/// discrete octant (relative to the previous state, ArMADA-style) and
/// delegates to the mapped family with its default configuration — no
/// fine-grained configuration, exactly the limitation the paper calls
/// out.
pub struct OctantMetaPartitioner<const D: usize> {
    state: Mutex<OctantState<D>>,
}

struct OctantState<const D: usize> {
    classifier: ArmadaClassifier,
    prev: Option<GridHierarchy<D>>,
    history: Vec<Octant>,
}

impl<const D: usize> OctantMetaPartitioner<D> {
    /// Fresh baseline.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(OctantState {
                classifier: ArmadaClassifier::new(),
                prev: None,
                history: Vec::new(),
            }),
        }
    }

    /// Octants chosen so far.
    pub fn history(&self) -> Vec<Octant> {
        self.state.lock().history.clone()
    }

    fn family_for(octant: &Octant) -> Box<dyn Partitioner<D>> {
        match octant.suggested_family() {
            "domain-based" => Box::new(DomainSfcPartitioner::new(DomainSfcParams::default())),
            "patch-based" => Box::new(PatchPartitioner::new(PatchParams::default())),
            _ => Box::new(HybridPartitioner::new(HybridParams::default())),
        }
    }
}

impl<const D: usize> Default for OctantMetaPartitioner<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> Partitioner<D> for OctantMetaPartitioner<D> {
    fn name(&self) -> String {
        "octant-armada".to_string()
    }

    fn partition(&self, h: &GridHierarchy<D>, nprocs: usize) -> Partition<D> {
        let mut st = self.state.lock();
        let prev = st.prev.take();
        let octant = st.classifier.classify(prev.as_ref(), h);
        st.history.push(octant);
        st.prev = Some(h.clone());
        Self::family_for(&octant).partition(h, nprocs)
    }

    fn cost_estimate(&self, h: &GridHierarchy<D>) -> f64 {
        // Simple box operations (ArMADA) plus the delegated family.
        let patches: usize = h.levels.iter().map(|l| l.patch_count()).sum();
        let delegated = {
            let st = self.state.lock();
            st.history
                .last()
                .map(|o| Self::family_for(o).cost_estimate(h))
                .unwrap_or(0.0)
        };
        patches as f64 / 40.0 + delegated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;
    use samr_partition::validate_partition;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn h(levels: &[Vec<Rect2>]) -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(Rect2::from_extents(32, 32), 2, levels)
    }

    #[test]
    fn produces_valid_partitions_and_tracks_octants() {
        let baseline = OctantMetaPartitioner::<2>::new();
        let seq = [
            h(&[vec![], vec![r(4, 4, 19, 19)]]),
            h(&[vec![], vec![r(8, 8, 23, 23)]]),
            h(&[vec![], vec![r(40, 40, 55, 55)]]),
        ];
        for hh in &seq {
            let part = baseline.partition(hh, 4);
            assert_eq!(validate_partition(hh, &part), Ok(()));
        }
        let hist = baseline.history();
        assert_eq!(hist.len(), 3);
        // The jump at step 3 must read as high dynamics.
        assert_eq!(hist[2].dynamics, samr_core::octant::Axis3::HighDynamics);
    }

    #[test]
    fn discrete_selection_has_no_configuration_gradations() {
        // The baseline can only emit default-configured families — the
        // §3 limitation. Two different-but-same-octant states must yield
        // byte-identical partitioner choices.
        let baseline = OctantMetaPartitioner::<2>::new();
        let a = h(&[vec![], vec![r(4, 4, 19, 19)]]);
        let b = h(&[vec![], vec![r(4, 4, 21, 21)]]);
        let pa = baseline.partition(&a, 4);
        let _ = pa;
        let hist1 = baseline.history()[0];
        baseline.partition(&b, 4);
        let hist2 = baseline.history()[1];
        if hist1 == hist2 {
            // Same octant => same (default) configuration by construction.
            assert_eq!(
                OctantMetaPartitioner::<2>::family_for(&hist1).name(),
                OctantMetaPartitioner::<2>::family_for(&hist2).name()
            );
        }
    }
}
