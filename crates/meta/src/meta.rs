//! The meta-partitioner: a stateful [`Partitioner`] that re-classifies
//! the hierarchy at every invocation and delegates to the selected,
//! configured technique — Figure 2 of the paper as running code. This
//! enables fully dynamic `P(A(t), C(t))` triples: the partitioning
//! technique is a function of the current application state.

use parking_lot::Mutex;
use samr_core::tradeoff1::{beta_c, beta_l, dimension1};
use samr_core::tradeoff2::Tradeoff2State;
use samr_core::tradeoff3::beta_m;
use samr_core::ClassificationPoint;
use samr_grid::GridHierarchy;
use samr_partition::{Partition, Partitioner};

use crate::selector::{PartitionerChoice, Selector, SelectorConfig};

/// Dynamic partitioner selection state.
struct MetaState<const D: usize> {
    prev_hierarchy: Option<GridHierarchy<D>>,
    selector: Selector,
    tradeoff2: Tradeoff2State,
    clock: f64,
    history: Vec<(ClassificationPoint, PartitionerChoice)>,
}

/// The adaptive meta-partitioner.
///
/// Implements [`Partitioner`], so it can be dropped in anywhere a static
/// partitioner is used; internally it runs the `samr-core` model against
/// the previously seen hierarchy, maps the classification point through
/// the [`Selector`], and invokes the chosen configured technique.
///
/// Invocations are assumed to arrive in trace order (the partitioner is
/// stateful by design — that is the whole point); interior mutability
/// keeps the [`Partitioner`] interface intact.
pub struct MetaPartitioner<const D: usize> {
    state: Mutex<MetaState<D>>,
    unit: i64,
}

impl<const D: usize> MetaPartitioner<D> {
    /// Meta-partitioner with default selector thresholds (the balanced
    /// default machine).
    pub fn new() -> Self {
        Self::with_config(SelectorConfig::default())
    }

    /// Meta-partitioner configured for a concrete machine — the system
    /// (C) component of the PAC triple: the selector weighs communication
    /// against computation using the machine's actual cost ratio.
    pub fn for_machine(machine: &samr_sim::MachineModel) -> Self {
        Self::with_config(SelectorConfig {
            comm_cost_ratio: machine.cell_transfer / machine.cell_update.max(1e-12),
            ..SelectorConfig::default()
        })
    }

    /// Meta-partitioner with explicit selector thresholds.
    pub fn with_config(config: SelectorConfig) -> Self {
        Self {
            state: Mutex::new(MetaState {
                prev_hierarchy: None,
                selector: Selector::new(config),
                tradeoff2: Tradeoff2State::new(1.0),
                clock: 0.0,
                history: Vec::new(),
            }),
            unit: 2,
        }
    }

    /// The sequence of `(classification point, choice)` decisions made so
    /// far (for the experiment reports).
    pub fn decisions(&self) -> Vec<(ClassificationPoint, PartitionerChoice)> {
        self.state.lock().history.clone()
    }

    /// Classify a hierarchy against the stored previous one and advance
    /// the internal state. Exposed for the experiment driver.
    pub fn classify_and_select(&self, h: &GridHierarchy<D>, nprocs: usize) -> PartitionerChoice {
        let mut st = self.state.lock();
        let bl = beta_l(h, self.unit, nprocs);
        let bc = beta_c(h, nprocs);
        let bm = match &st.prev_hierarchy {
            Some(prev) => beta_m(prev, h),
            None => 0.0,
        };
        let now = st.clock;
        st.clock += 1.0;
        let t2 = st
            .tradeoff2
            .observe(now, h.total_points(), &[bl, bc, bm], true);
        let point = ClassificationPoint::new(dimension1(bl, bc), t2.d2, bm);
        let choice = st.selector.select(&crate::selector::SelectionInput {
            point,
            beta_l: bl,
            beta_c: bc,
            beta_m: bm,
        });
        st.history.push((point, choice));
        st.prev_hierarchy = Some(h.clone());
        choice
    }
}

impl<const D: usize> Default for MetaPartitioner<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> Partitioner<D> for MetaPartitioner<D> {
    fn name(&self) -> String {
        "meta-partitioner".to_string()
    }

    fn partition(&self, h: &GridHierarchy<D>, nprocs: usize) -> Partition<D> {
        let choice = self.classify_and_select(h, nprocs);
        choice.partition(h, nprocs)
    }

    fn cost_estimate(&self, h: &GridHierarchy<D>) -> f64 {
        // Classification cost (box intersections, one pass over patches)
        // plus the cost of whatever was selected last.
        let classify = h.levels.iter().map(|l| l.patch_count()).sum::<usize>() as f64 / 20.0;
        let st = self.state.lock();
        let delegated = st
            .history
            .last()
            .map(|(_, c)| c.cost_estimate(h))
            .unwrap_or(0.0);
        classify + delegated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_geom::Rect2;
    use samr_partition::validate_partition;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect2 {
        Rect2::from_coords(x0, y0, x1, y1)
    }

    fn h(levels: &[Vec<Rect2>]) -> GridHierarchy<2> {
        GridHierarchy::from_level_rects(Rect2::from_extents(32, 32), 2, levels)
    }

    #[test]
    fn produces_valid_partitions_and_records_decisions() {
        let meta = MetaPartitioner::<2>::new();
        let seq = [
            h(&[vec![], vec![r(0, 0, 15, 15)]]),
            h(&[vec![], vec![r(8, 8, 23, 23)]]),
            h(&[vec![], vec![r(40, 40, 55, 55)]]),
        ];
        for hh in &seq {
            let part = meta.partition(hh, 4);
            assert_eq!(validate_partition(hh, &part), Ok(()));
        }
        let d = meta.decisions();
        assert_eq!(d.len(), 3);
        // First step has no previous hierarchy: d3 = 0.
        assert_eq!(d[0].0.d3, 0.0);
        // The relocated refinement at step 3 must register migration
        // pressure.
        assert!(d[2].0.d3 > 0.1);
    }

    #[test]
    fn migration_pressure_changes_selection() {
        // Deep refinement dominating |H|, jumping across the domain every
        // step: β_m is large and the selector must end up on the
        // migration-aware domain-based choice (patience = 2 requires two
        // consecutive votes).
        let meta = MetaPartitioner::<2>::new();
        let a = h(&[vec![], vec![r(0, 0, 31, 31)], vec![r(0, 0, 31, 31)]]);
        let b = h(&[vec![], vec![r(32, 32, 63, 63)], vec![r(64, 64, 95, 95)]]);
        meta.partition(&a, 4);
        meta.partition(&b, 4);
        meta.partition(&a, 4);
        meta.partition(&b, 4);
        let d = meta.decisions();
        // β_m at the jumping steps is 1 - 1024/3072 ≈ 0.67 >> threshold.
        assert!(d[1].0.d3 > 0.5, "d3 = {}", d[1].0.d3);
        let families: Vec<&str> = d.iter().map(|(_, c)| c.family()).collect();
        assert_eq!(
            *families.last().unwrap(),
            "domain-based",
            "decisions: {families:?}"
        );
    }

    #[test]
    fn cost_estimate_includes_delegate() {
        let meta = MetaPartitioner::<2>::new();
        let hh = h(&[vec![], vec![r(0, 0, 15, 15)]]);
        let before = meta.cost_estimate(&hh);
        meta.partition(&hh, 4);
        let after = meta.cost_estimate(&hh);
        assert!(after > before);
    }
}
