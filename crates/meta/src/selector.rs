//! Classification point → partitioner selection and configuration.

use samr_core::ClassificationPoint;
use samr_geom::sfc::SfcCurve;
use samr_partition::{DomainSfcParams, HybridParams, PatchParams};
use serde::{Deserialize, Serialize};

// The configured-choice registry lives with the partitioner families in
// `samr-partition` (one enum shared by the selector, the campaign engine,
// the benches and the CLI); re-exported here for compatibility.
pub use samr_partition::PartitionerChoice;

/// What the selector consumes: the classification point plus the raw
/// penalty amplitudes. Dimension 1 is a *relative* weight (the paper,
/// §4.3: "β_L = β_C = 0.1 would yield the same result as β_L = β_C =
/// 0.4"), so family selection also needs the absolute amplitudes to know
/// whether communication matters at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectionInput {
    /// The classification point `(d1, d2, d3)`.
    pub point: ClassificationPoint,
    /// Absolute load-imbalance penalty.
    pub beta_l: f64,
    /// Absolute worst-case communication penalty.
    pub beta_c: f64,
    /// Absolute data-migration penalty.
    pub beta_m: f64,
}

/// Selector thresholds. The classification space is continuous, so the
/// selector both picks a family (coarse) and steers its parameters
/// (fine), per §4's "coarse grained partitioner selection … extremely
/// fine grained partitioner configuration".
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SelectorConfig {
    /// d3 above this: migration dominates — prefer locality-preserving
    /// full-order SFC (minimal movement between successive cuts).
    pub migration_threshold: f64,
    /// Absolute β_l (workload-concentration Gini) above which domain-based
    /// cuts quantize too badly and a balance-first family is selected.
    pub balance_threshold: f64,
    /// Per-point communication cost relative to the per-point update cost
    /// of the machine (`cell_transfer / cell_update`): the system (C)
    /// component of the PAC triple. The product `β_c · comm_cost_ratio`
    /// estimates how much a unit of avoidable communication hurts in
    /// compute units, and gates how far the selector may stray from the
    /// communication-optimal domain-based family when balance pressure is
    /// high.
    pub comm_cost_ratio: f64,
    /// Minimum distance the classification point must move before the
    /// selection is reconsidered (hysteresis against thrashing — the
    /// sliding-window idea the paper credits to Chandra).
    pub hysteresis: f64,
    /// Number of *consecutive* classifications that must agree on a
    /// different choice before the selector actually switches. Every
    /// switch costs a redistribution, so flapping is expensive; this is
    /// the "prevent over-reacting to sudden changes" guard of ArMADA's
    /// sliding window.
    pub switch_patience: usize,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        Self {
            migration_threshold: 0.35,
            balance_threshold: 0.75,
            comm_cost_ratio: 8.0,
            hysteresis: 0.08,
            switch_patience: 2,
        }
    }
}

/// The consecutive-agreement switch guard — the "prevent over-reacting
/// to sudden changes" idea of ArMADA's sliding window, factored out so
/// the selector and the adaptive partition policies share one
/// implementation instead of growing two.
///
/// The gate holds the *pending* candidate and its vote count. Each
/// [`vote`](Self::vote) for the same candidate increments the count; a
/// vote for a different candidate restarts it at one. The vote that
/// reaches `patience` consecutive agreements clears the gate and returns
/// `true` — the caller commits the switch. [`reset`](Self::reset) drops
/// pending votes (the current choice was re-affirmed, or a phase
/// boundary was crossed).
#[derive(Clone, Debug, Default)]
pub struct PatienceGate<T: Copy + PartialEq> {
    pending: Option<(T, usize)>,
}

impl<T: Copy + PartialEq> PatienceGate<T> {
    /// A gate with no pending votes.
    pub fn new() -> Self {
        Self { pending: None }
    }

    /// Cast one vote for switching to `candidate`; `true` means the
    /// candidate has now agreed `patience` times in a row (clamped to at
    /// least 1) and the switch should be committed.
    pub fn vote(&mut self, candidate: T, patience: usize) -> bool {
        let votes = match self.pending {
            Some((c, n)) if c == candidate => n + 1,
            _ => 1,
        };
        if votes >= patience.max(1) {
            self.pending = None;
            true
        } else {
            self.pending = Some((candidate, votes));
            false
        }
    }

    /// Drop any pending votes.
    pub fn reset(&mut self) {
        self.pending = None;
    }
}

/// Stateful selector with hysteresis and switch patience.
#[derive(Clone, Debug)]
pub struct Selector {
    /// Thresholds.
    pub config: SelectorConfig,
    last: Option<(ClassificationPoint, PartitionerChoice)>,
    gate: PatienceGate<PartitionerChoice>,
}

impl Selector {
    /// New selector with the given thresholds.
    pub fn new(config: SelectorConfig) -> Self {
        Self {
            config,
            last: None,
            gate: PatienceGate::new(),
        }
    }

    /// The raw (hysteresis-free) mapping from a classification to a
    /// configured choice.
    ///
    /// Family selection keys on the *absolute* penalties (§4.3's point:
    /// the relative d1 cannot tell `β_L = β_C = 0.1` apart from `0.4`);
    /// the d2 coordinate steers the configuration (atomic-unit size,
    /// splitting aggressiveness). The meta never selects partially
    /// ordered SFC mappings: the ordering's marginal speed advantage is
    /// far outweighed by the data migration its unstable cuts cause (the
    /// paper's §5.2 suspicion, confirmed by the `ablation_sfc` bench).
    pub fn map(&self, input: &SelectionInput) -> PartitionerChoice {
        let c = &self.config;
        let p = &input.point;
        let atomic_unit = if p.d2 >= 0.5 { 2 } else { 4 };
        if p.d3 >= c.migration_threshold {
            // Migration pressure: keep cuts stable and local — full-order
            // Hilbert SFC is the most incremental-friendly cut.
            return PartitionerChoice::DomainSfc(DomainSfcParams {
                atomic_unit,
                curve: SfcCurve::Hilbert,
                full_order: true,
            });
        }
        if input.beta_l >= c.balance_threshold {
            // The workload distribution is so concentrated that a
            // domain-based cut quantizes badly. Whether abandoning the
            // communication-optimal family pays off depends on the
            // machine: weigh the worst-case communication against its
            // cost in compute units.
            let comm_pain = input.beta_c * c.comm_cost_ratio;
            if comm_pain <= 0.5 {
                // Communication is nearly free: per-level patch-based
                // balancing, with spatially coherent assignment (the LPT
                // variant trades too much migration for marginal
                // balance).
                return PartitionerChoice::Patch(PatchParams {
                    split_factor: if p.d2 >= 0.5 { 1.0 } else { 2.0 },
                    min_block: 2,
                    assign: samr_partition::patch_part::PatchAssign::SfcChunk,
                });
            }
            if comm_pain <= 2.0 {
                // Middle ground: the hybrid keeps Core locality while the
                // Hue top-up (with exact fractional blocking) restores
                // balance.
                return PartitionerChoice::Hybrid(HybridParams {
                    atomic_unit,
                    curve: SfcCurve::Hilbert,
                    full_order: true,
                    bilevel_size: 2,
                    hue_blocks_per_proc: 2,
                    fractional_blocking: true,
                });
            }
            // Communication is too precious: live with the imbalance,
            // fall through to domain-based.
        }
        // Default: strictly domain-based — zero inter-level communication
        // and the most stable cuts.
        PartitionerChoice::DomainSfc(DomainSfcParams {
            atomic_unit,
            curve: SfcCurve::Hilbert,
            full_order: true,
        })
    }

    /// Select with hysteresis and patience: the previous choice is kept
    /// (a) while the classification point stays within `hysteresis` of
    /// the point at which the choice was made, and (b) until the raw
    /// mapping has disagreed with the current choice `switch_patience`
    /// times in a row.
    pub fn select(&mut self, input: &SelectionInput) -> PartitionerChoice {
        let p = &input.point;
        let Some((anchor, current)) = self.last else {
            let choice = self.map(input);
            self.last = Some((*p, choice));
            return choice;
        };
        if anchor.distance(p) < self.config.hysteresis {
            self.gate.reset();
            return current;
        }
        let mapped = self.map(input);
        if mapped == current {
            self.gate.reset();
            self.last = Some((*p, current));
            return current;
        }
        if self.gate.vote(mapped, self.config.switch_patience) {
            self.last = Some((*p, mapped));
            mapped
        } else {
            current
        }
    }

    /// Forget the hysteresis anchor and pending votes (e.g. at phase
    /// boundaries).
    pub fn reset(&mut self) {
        self.last = None;
        self.gate.reset();
    }
}

impl Default for Selector {
    fn default() -> Self {
        Self::new(SelectorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Input with explicit absolute penalties; the point's d1 is derived.
    fn input(beta_l: f64, beta_c: f64, d2: f64, d3: f64) -> SelectionInput {
        let d1 = if beta_l + beta_c > 0.0 {
            beta_l / (beta_l + beta_c)
        } else {
            0.5
        };
        SelectionInput {
            point: ClassificationPoint::new(d1, d2, d3),
            beta_l,
            beta_c,
            beta_m: d3,
        }
    }

    #[test]
    fn migration_pressure_selects_stable_sfc() {
        let s = Selector::default();
        let c = s.map(&input(0.5, 0.3, 0.5, 0.8));
        match c {
            PartitionerChoice::DomainSfc(p) => {
                assert!(p.full_order);
                assert_eq!(p.curve, SfcCurve::Hilbert);
            }
            other => panic!("expected domain-based, got {other:?}"),
        }
    }

    #[test]
    fn balance_pressure_selects_patch_based_when_comm_is_cheap() {
        // β_c·ratio = 0.05·8 = 0.4 <= 0.5: communication nearly free.
        let s = Selector::default();
        assert_eq!(s.map(&input(0.9, 0.05, 0.5, 0.1)).family(), "patch-based");
    }

    #[test]
    fn balance_pressure_with_moderate_comm_selects_hybrid() {
        // β_c·ratio = 0.15·8 = 1.2 in (0.5, 2.0]: the middle ground.
        let s = Selector::default();
        let c = s.map(&input(0.9, 0.15, 0.5, 0.1));
        assert_eq!(c.family(), "hybrid");
        match c {
            PartitionerChoice::Hybrid(p) => assert!(p.fractional_blocking),
            _ => unreachable!(),
        }
    }

    #[test]
    fn balance_pressure_with_precious_comm_stays_domain_based() {
        // β_c·ratio = 0.5·8 = 4 > 2: live with the imbalance.
        let s = Selector::default();
        assert_eq!(s.map(&input(0.9, 0.5, 0.5, 0.1)).family(), "domain-based");
    }

    #[test]
    fn machine_changes_the_family_for_the_same_application_state() {
        // The PAC argument in one assertion: same (A) classification,
        // different (C) machines, different partitioner.
        let expensive = Selector::default(); // ratio 8
        let cheap = Selector::new(SelectorConfig {
            comm_cost_ratio: 0.05,
            ..SelectorConfig::default()
        });
        let st = input(0.9, 0.5, 0.5, 0.1);
        assert_eq!(expensive.map(&st).family(), "domain-based");
        assert_eq!(cheap.map(&st).family(), "patch-based");
    }

    #[test]
    fn moderate_states_select_domain_based() {
        let s = Selector::default();
        assert_eq!(s.map(&input(0.3, 0.3, 0.5, 0.1)).family(), "domain-based");
        assert_eq!(s.map(&input(0.5, 0.1, 0.5, 0.1)).family(), "domain-based");
        assert_eq!(s.map(&input(0.1, 0.5, 0.5, 0.1)).family(), "domain-based");
    }

    #[test]
    fn meta_never_selects_partial_ordering() {
        let s = Selector::default();
        for bl in [0.1, 0.5, 0.9] {
            for bc in [0.1, 0.5] {
                for d2 in [0.1, 0.9] {
                    for d3 in [0.1, 0.9] {
                        match s.map(&input(bl, bc, d2, d3)) {
                            PartitionerChoice::DomainSfc(p) => assert!(p.full_order),
                            PartitionerChoice::Hybrid(p) => assert!(p.full_order),
                            PartitionerChoice::Patch(_) => {}
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn d2_steers_configuration_not_family() {
        let s = Selector::default();
        let fast = s.map(&input(0.3, 0.3, 0.1, 0.1));
        let quality = s.map(&input(0.3, 0.3, 0.9, 0.1));
        assert_eq!(fast.family(), "domain-based");
        assert_eq!(quality.family(), "domain-based");
        assert_ne!(fast, quality, "d2 must change the configuration");
    }

    #[test]
    fn hysteresis_keeps_choice_for_small_moves() {
        let mut s = Selector::default();
        // Anchor just below the β_l balance threshold: domain-based.
        let first = s.select(&input(0.74, 0.1, 0.5, 0.1));
        assert_eq!(first.family(), "domain-based");
        // β_l crosses the threshold, but the classification *point*
        // barely moves (β_l changes d1 only marginally): the selection
        // must hold.
        let second = s.select(&input(0.76, 0.1, 0.5, 0.1));
        assert_eq!(first, second);
    }

    #[test]
    fn patience_requires_consecutive_votes() {
        let mut s = Selector::new(SelectorConfig {
            switch_patience: 2,
            hysteresis: 0.01,
            ..SelectorConfig::default()
        });
        let first = s.select(&input(0.3, 0.3, 0.5, 0.1)); // domain-based
                                                          // One isolated vote for hybrid: selection holds.
        let v1 = s.select(&input(0.9, 0.15, 0.5, 0.1));
        assert_eq!(v1, first);
        // Second consecutive vote: now it switches.
        let v2 = s.select(&input(0.9, 0.15, 0.5, 0.1));
        assert_eq!(v2.family(), "hybrid");
    }

    #[test]
    fn interleaved_disagreement_resets_patience() {
        let mut s = Selector::new(SelectorConfig {
            switch_patience: 2,
            hysteresis: 0.01,
            ..SelectorConfig::default()
        });
        let first = s.select(&input(0.3, 0.3, 0.5, 0.1)); // domain-based
        s.select(&input(0.9, 0.15, 0.5, 0.1)); // vote hybrid (1)
        s.select(&input(0.3, 0.3, 0.5, 0.1)); // agreeing again: reset
        let again = s.select(&input(0.9, 0.15, 0.5, 0.1)); // vote hybrid (1)
        assert_eq!(again, first, "patience must have been reset");
    }

    #[test]
    fn patience_gate_counts_consecutive_votes_only() {
        let mut g = PatienceGate::new();
        assert!(!g.vote('a', 3));
        assert!(!g.vote('a', 3));
        assert!(g.vote('a', 3), "third consecutive vote commits");
        // The gate cleared itself: the count restarts.
        assert!(!g.vote('a', 3));
        // A different candidate restarts the count.
        assert!(!g.vote('b', 3));
        assert!(!g.vote('a', 3));
        // A reset drops pending votes.
        g.reset();
        assert!(!g.vote('a', 2));
        assert!(g.vote('a', 2));
        // Patience is clamped to at least one vote.
        assert!(g.vote('c', 0));
    }

    #[test]
    fn reset_clears_anchor() {
        let mut s = Selector::new(SelectorConfig {
            switch_patience: 1,
            ..SelectorConfig::default()
        });
        // Anchor just below the balance threshold: domain-based.
        let a = s.select(&input(0.74, 0.05, 0.5, 0.1));
        s.reset();
        // The same tiny move as in the hysteresis test now re-maps
        // immediately: patch-based (β_c·ratio = 0.4 ≤ 0.5).
        let b = s.select(&input(0.76, 0.05, 0.5, 0.1));
        assert_ne!(a, b);
        assert_eq!(b.family(), "patch-based");
    }
}
