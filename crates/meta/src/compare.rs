//! Static vs. dynamic partitioner selection on a trace — the
//! proof-of-concept experiment (DESIGN.md META1).
//!
//! The paper motivates the meta-partitioner with Figure 1 (a static P
//! leaves execution time on the table) and the ArMADA result ("even with
//! such a simple model, execution times were reduced"). This driver makes
//! that claim measurable: run a trace through every static partitioner
//! and through the [`MetaPartitioner`], under the same machine model, and
//! compare total estimated execution times.

use crate::meta::MetaPartitioner;
use crate::octant_meta::OctantMetaPartitioner;
use samr_partition::{DomainSfcPartitioner, HybridPartitioner, Partitioner, PatchPartitioner};
use samr_sim::{simulate_source_stats, SimConfig, StepMetrics};
use samr_trace::io::TraceIoError;
use samr_trace::{HierarchyTrace, MemorySource, SnapshotSource};
use serde::{Deserialize, Serialize};

/// Result of one partitioner (static or dynamic) over a trace.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Partitioner name.
    pub name: String,
    /// Total estimated execution time.
    pub total_time: f64,
    /// Mean load imbalance over the run.
    pub mean_imbalance: f64,
    /// Mean grid-relative communication.
    pub mean_rel_comm: f64,
    /// Mean grid-relative migration.
    pub mean_rel_migration: f64,
}

/// Outcome of the full comparison.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ComparisonResult {
    /// Static partitioner outcomes.
    pub static_runs: Vec<RunOutcome>,
    /// The meta-partitioner (continuous classification) outcome.
    pub meta_run: RunOutcome,
    /// The octant-approach baseline (discrete ArMADA-style
    /// classification) outcome — the legacy selector §3 critiques.
    pub octant_run: RunOutcome,
}

impl ComparisonResult {
    /// The best static outcome (an *oracle* static choice — stronger than
    /// what a user could pick a priori).
    pub fn best_static(&self) -> &RunOutcome {
        self.static_runs
            .iter()
            .min_by(|a, b| a.total_time.total_cmp(&b.total_time))
            .expect("at least one static partitioner")
    }

    /// The worst static outcome (the cost of picking wrong, once, for the
    /// whole run).
    pub fn worst_static(&self) -> &RunOutcome {
        self.static_runs
            .iter()
            .max_by(|a, b| a.total_time.total_cmp(&b.total_time))
            .expect("at least one static partitioner")
    }

    /// Meta time / best static time (< 1 means the dynamic selection beat
    /// even the oracle static choice).
    pub fn meta_vs_best(&self) -> f64 {
        self.meta_run.total_time / self.best_static().total_time
    }

    /// Meta time / worst static time.
    pub fn meta_vs_worst(&self) -> f64 {
        self.meta_run.total_time / self.worst_static().total_time
    }
}

/// Run one (possibly stateful) partitioner sequentially over a snapshot
/// stream. Sequential order is required for the meta-partitioner, whose
/// classification depends on the previous hierarchy — this is the
/// windowed streaming driver pinned to window 1, so at most two
/// snapshots (the current pair) are ever resident.
pub fn run_sequential_source<const D: usize>(
    source: &mut (dyn SnapshotSource<D> + '_),
    partitioner: &(dyn Partitioner<D> + Sync),
    cfg: &SimConfig,
) -> Result<(Vec<StepMetrics>, f64), TraceIoError> {
    let (result, _) = simulate_source_stats(source, partitioner, cfg, 1)?;
    Ok((result.steps, result.total_time))
}

/// Run one (possibly stateful) partitioner sequentially over a whole
/// trace — the batch facade over [`run_sequential_source`].
pub fn run_sequential<const D: usize>(
    trace: &HierarchyTrace<D>,
    partitioner: &(dyn Partitioner<D> + Sync),
    cfg: &SimConfig,
) -> (Vec<StepMetrics>, f64) {
    run_sequential_source(&mut MemorySource::new(trace), partitioner, cfg)
        .expect("in-memory snapshot sources cannot fail")
}

fn outcome(name: String, steps: &[StepMetrics], total: f64) -> RunOutcome {
    let n = steps.len().max(1) as f64;
    RunOutcome {
        name,
        total_time: total,
        mean_imbalance: steps.iter().map(|s| s.load_imbalance).sum::<f64>() / n,
        mean_rel_comm: steps.iter().map(|s| s.rel_comm).sum::<f64>() / n,
        mean_rel_migration: steps.iter().map(|s| s.rel_migration).sum::<f64>() / n,
    }
}

/// Compare the three static partitioner families (default
/// configurations) against the meta-partitioner. The snapshot stream is
/// opened through `open` exactly **once** and drained into a shared
/// in-memory trace that every pass replays — N compared partitioners
/// cost one trace generation (an `open` backed by a generator used to
/// regenerate the whole trace per pass). Each pass runs strictly
/// sequentially (the selectors are stateful).
pub fn compare_on_sources<const D: usize, S, F>(
    mut open: F,
    cfg: &SimConfig,
) -> Result<ComparisonResult, TraceIoError>
where
    S: SnapshotSource<D>,
    F: FnMut() -> Result<S, TraceIoError>,
{
    let trace = {
        let mut source = open()?;
        let mut t = HierarchyTrace::new(source.meta().clone());
        while let Some(snap) = source.next_snapshot()? {
            t.push(snap);
        }
        t
    };
    let statics: Vec<Box<dyn Partitioner<D> + Sync>> = vec![
        Box::new(DomainSfcPartitioner::default()),
        Box::new(PatchPartitioner::default()),
        Box::new(HybridPartitioner::default()),
    ];
    let mut static_runs = Vec::with_capacity(statics.len());
    for p in &statics {
        let (steps, total) =
            run_sequential_source(&mut MemorySource::new(&trace), p.as_ref(), cfg)?;
        static_runs.push(outcome(p.name(), &steps, total));
    }
    let meta = MetaPartitioner::for_machine(&cfg.machine);
    let (steps, total) = run_sequential_source(&mut MemorySource::new(&trace), &meta, cfg)?;
    let octant = OctantMetaPartitioner::new();
    let (osteps, ototal) = run_sequential_source(&mut MemorySource::new(&trace), &octant, cfg)?;
    Ok(ComparisonResult {
        static_runs,
        meta_run: outcome(meta.name(), &steps, total),
        octant_run: outcome(octant.name(), &osteps, ototal),
    })
}

/// Compare the three static partitioner families (default configurations)
/// against the meta-partitioner on one in-memory trace — the batch
/// facade over [`compare_on_sources`].
pub fn compare_on_trace<const D: usize>(
    trace: &HierarchyTrace<D>,
    cfg: &SimConfig,
) -> ComparisonResult {
    compare_on_sources(|| Ok(MemorySource::new(trace)), cfg)
        .expect("in-memory snapshot sources cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_apps::{generate_trace, AppKind, TraceGenConfig};

    fn cfg() -> SimConfig {
        SimConfig {
            nprocs: 8,
            ..SimConfig::default()
        }
    }

    #[test]
    fn comparison_produces_all_outcomes() {
        let trace = generate_trace(AppKind::Tp2d, &TraceGenConfig::smoke());
        let res = compare_on_trace(&trace, &cfg());
        assert_eq!(res.static_runs.len(), 3);
        assert!(res.meta_run.total_time > 0.0);
        for r in &res.static_runs {
            assert!(r.total_time > 0.0);
            assert!(r.mean_imbalance >= 1.0);
        }
    }

    #[test]
    fn meta_is_competitive_with_static_choices() {
        // The proof-of-concept claim: dynamic selection should not lose
        // badly to the oracle static choice and should beat the worst
        // static choice.
        let trace = generate_trace(AppKind::Bl2d, &TraceGenConfig::smoke());
        let res = compare_on_trace(&trace, &cfg());
        assert!(
            res.meta_vs_worst() < 1.0,
            "meta ({}) should beat the worst static ({})",
            res.meta_run.total_time,
            res.worst_static().total_time
        );
        assert!(
            res.meta_vs_best() < 1.6,
            "meta ({}) should stay near the best static ({})",
            res.meta_run.total_time,
            res.best_static().total_time
        );
    }

    #[test]
    fn comparison_generates_the_trace_once() {
        // Five partitioners are compared, but the source is opened (and
        // the trace therefore generated) exactly once.
        let trace = generate_trace(AppKind::Tp2d, &TraceGenConfig::smoke());
        let mut opens = 0usize;
        let shared = compare_on_sources::<2, _, _>(
            || {
                opens += 1;
                Ok(MemorySource::new(&trace))
            },
            &cfg(),
        )
        .unwrap();
        assert_eq!(opens, 1);
        // And the shared replay changes nothing about the outcomes.
        assert_eq!(shared, compare_on_trace(&trace, &cfg()));
    }

    #[test]
    fn sequential_runner_matches_simulate_for_stateless() {
        use samr_sim::simulate_trace;
        let trace = generate_trace(AppKind::Sc2d, &TraceGenConfig::smoke());
        let p = DomainSfcPartitioner::default();
        let cfg = cfg();
        let (steps, total) = run_sequential(&trace, &p, &cfg);
        let par = simulate_trace(&trace, &p, &cfg);
        assert_eq!(steps, par.steps);
        assert!((total - par.total_time).abs() < 1e-9);
    }
}
