//! Partitioner-registry contract: every named preset round-trips
//! through `parse`, and the slugs scenarios derive from the registry
//! stay unique and file-safe across the full registry × machine axis —
//! the invariant distributed campaign artifacts depend on, since shard
//! merges address scenarios by slug-named files.

use samr_apps::{AppKind, TraceGenConfig};
use samr_engine::{PartitionerSpec, Scenario};
use samr_sim::{MachineModel, SimConfig};
use std::collections::HashSet;

/// Characters that are safe in artifact file names on every platform
/// the campaign artifacts are expected to travel across.
fn file_safe(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

#[test]
fn every_registry_name_parses_back_to_an_equal_spec() {
    for (name, spec) in PartitionerSpec::registry() {
        let parsed = PartitionerSpec::parse(name)
            .unwrap_or_else(|e| panic!("registry name '{name}' failed to parse: {e}"));
        assert_eq!(parsed, spec, "'{name}' parsed to a different spec");
        // And the round-trip survives serialization, as campaign specs
        // shipped to shard workers must.
        let json = serde_json::to_string(&parsed).unwrap();
        let back: PartitionerSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec, "'{name}' changed across JSON");
    }
}

#[test]
fn registry_slugs_are_unique_and_file_safe() {
    let registry = PartitionerSpec::registry();
    let mut slugs = HashSet::new();
    for (name, spec) in &registry {
        let slug = spec.slug();
        assert!(
            file_safe(&slug),
            "slug '{slug}' of '{name}' is not file-safe"
        );
        assert!(
            slugs.insert(slug.clone()),
            "slug '{slug}' of '{name}' collides with another registry entry"
        );
    }
    assert_eq!(slugs.len(), registry.len());
}

#[test]
fn scenario_slugs_are_unique_across_the_registry_machine_axis() {
    // The full registry × machine-preset product: every combination must
    // slug to a distinct, file-safe artifact name, or sharded campaign
    // artifacts would silently overwrite each other.
    let mut slugs = HashSet::new();
    let mut n = 0;
    for (pname, partitioner) in PartitionerSpec::registry() {
        for (mname, machine) in MachineModel::registry() {
            let scenario = Scenario::new(
                AppKind::Tp2d,
                TraceGenConfig::smoke(),
                partitioner,
                SimConfig {
                    nprocs: 16,
                    machine,
                    ..SimConfig::default()
                },
            );
            let slug = scenario.slug();
            assert!(
                file_safe(&slug),
                "scenario slug '{slug}' ({pname} × {mname}) is not file-safe"
            );
            assert!(
                slugs.insert(slug.clone()),
                "scenario slug '{slug}' ({pname} × {mname}) collides"
            );
            n += 1;
        }
    }
    assert_eq!(slugs.len(), n);
    assert_eq!(
        n,
        PartitionerSpec::registry().len() * MachineModel::registry().len()
    );
}
