//! Campaign engine integration: expansion, artifacts and — the load-
//! bearing property — bit-level determinism of campaign artifacts across
//! repeated runs and across thread counts.

use samr_apps::{AppKind, TraceGenConfig};
use samr_engine::{Campaign, CampaignSpec, PartitionerSpec, Scenario};

fn two_by_two() -> CampaignSpec {
    CampaignSpec::new(TraceGenConfig::smoke())
        .apps([AppKind::Tp2d, AppKind::Sc2d])
        .partitioners([
            PartitionerSpec::parse("hybrid").unwrap(),
            PartitionerSpec::parse("domain-sfc").unwrap(),
        ])
        .nprocs([8])
}

/// All scenario CSVs of one campaign run, concatenated in scenario
/// order with their slugs (the exact bytes `Campaign::run_to_dir`
/// writes).
fn campaign_csv_bytes(spec: &CampaignSpec) -> String {
    Campaign::run(spec)
        .iter()
        .map(|o| format!("# {}\n{}", o.scenario.slug(), o.to_csv()))
        .collect()
}

#[test]
fn campaign_csv_is_byte_identical_across_runs_and_thread_counts() {
    let spec = two_by_two();
    let baseline = campaign_csv_bytes(&spec);
    assert!(!baseline.is_empty());

    // Same process, second run: cache hits everywhere, same bytes.
    assert_eq!(baseline, campaign_csv_bytes(&spec), "second run differed");

    // Forced single-threaded and oversubscribed pools: partitioning and
    // scenario sweeps must not let scheduling order leak into results.
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let bytes = pool.install(|| campaign_csv_bytes(&spec));
        assert_eq!(
            baseline, bytes,
            "thread count {threads} changed the artifacts"
        );
    }
}

#[test]
fn expansion_count_matches_axes_product() {
    let spec = two_by_two().nprocs([4, 8, 16]).ghost_widths([1, 2]);
    assert_eq!(spec.len(), 2 * 2 * 3 * 2);
    assert_eq!(Campaign::run(&spec).len(), spec.len());
}

#[test]
fn scenarios_roundtrip_through_json_inside_a_campaign() {
    for scenario in two_by_two().scenarios() {
        let json = serde_json::to_string(&scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(scenario, back);
        assert_eq!(scenario.slug(), back.slug());
    }
}

#[test]
fn run_to_dir_writes_one_csv_and_one_json_per_scenario() {
    let dir = std::env::temp_dir().join(format!(
        "samr-engine-test-{}-{}",
        std::process::id(),
        "artifacts"
    ));
    let spec = two_by_two();
    let (outcomes, paths) = Campaign::run_to_dir(&spec, &dir).expect("write artifacts");
    assert_eq!(outcomes.len(), spec.len());
    assert_eq!(paths.len(), 2 * outcomes.len());
    for outcome in &outcomes {
        let slug = outcome.scenario.slug();
        let csv = std::fs::read_to_string(dir.join(format!("{slug}.csv"))).unwrap();
        assert_eq!(csv, outcome.to_csv());
        let json = std::fs::read_to_string(dir.join(format!("{slug}.json"))).unwrap();
        let summary: samr_engine::ScenarioSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(summary.scenario, outcome.scenario);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dynamic_selectors_run_inside_campaigns() {
    let spec = CampaignSpec::new(TraceGenConfig::smoke())
        .apps([AppKind::Bl2d])
        .partitioners([PartitionerSpec::Meta, PartitionerSpec::OctantMeta])
        .nprocs([8]);
    let outcomes = Campaign::run(&spec);
    assert_eq!(outcomes.len(), 2);
    for o in &outcomes {
        assert!(o.sim.total_time > 0.0);
        assert_eq!(o.sim.steps.len(), o.model.len());
    }
}
