//! Campaign engine integration: expansion, artifacts and — the load-
//! bearing property — bit-level determinism of campaign artifacts across
//! repeated runs and across thread counts.

use samr_apps::{AppKind, TraceGenConfig};
use samr_engine::{Campaign, CampaignSpec, PartitionerSpec, PolicySpec, Scenario};

fn two_by_two() -> CampaignSpec {
    CampaignSpec::new(TraceGenConfig::smoke())
        .apps([AppKind::Tp2d, AppKind::Sc2d])
        .partitioners([
            PartitionerSpec::parse("hybrid").unwrap(),
            PartitionerSpec::parse("domain-sfc").unwrap(),
        ])
        .nprocs([8])
}

/// All scenario CSVs of one campaign run, concatenated in scenario
/// order with their slugs (the exact bytes `Campaign::run_to_dir`
/// writes).
fn campaign_csv_bytes(spec: &CampaignSpec) -> String {
    Campaign::run(spec)
        .iter()
        .map(|o| format!("# {}\n{}", o.scenario.slug(), o.to_csv()))
        .collect()
}

#[test]
fn campaign_csv_is_byte_identical_across_runs_and_thread_counts() {
    let spec = two_by_two();
    let baseline = campaign_csv_bytes(&spec);
    assert!(!baseline.is_empty());

    // Same process, second run: cache hits everywhere, same bytes.
    assert_eq!(baseline, campaign_csv_bytes(&spec), "second run differed");

    // Forced single-threaded and oversubscribed pools: partitioning and
    // scenario sweeps must not let scheduling order leak into results.
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let bytes = pool.install(|| campaign_csv_bytes(&spec));
        assert_eq!(
            baseline, bytes,
            "thread count {threads} changed the artifacts"
        );
    }
}

#[test]
fn expansion_count_matches_axes_product() {
    let spec = two_by_two().nprocs([4, 8, 16]).ghost_widths([1, 2]);
    assert_eq!(spec.len(), 2 * 2 * 3 * 2);
    assert_eq!(Campaign::run(&spec).len(), spec.len());
}

#[test]
fn scenarios_roundtrip_through_json_inside_a_campaign() {
    for scenario in two_by_two().scenarios() {
        let json = serde_json::to_string(&scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(scenario, back);
        assert_eq!(scenario.slug(), back.slug());
    }
}

#[test]
fn run_to_dir_writes_one_csv_and_one_json_per_scenario() {
    let dir = std::env::temp_dir().join(format!(
        "samr-engine-test-{}-{}",
        std::process::id(),
        "artifacts"
    ));
    let spec = two_by_two();
    let (outcomes, paths) = Campaign::run_to_dir(&spec, &dir).expect("write artifacts");
    assert_eq!(outcomes.len(), spec.len());
    // Two artifacts per scenario plus the campaign CSV, the manifest
    // and the Pareto front.
    assert_eq!(paths.len(), 2 * outcomes.len() + 3);
    for outcome in &outcomes {
        let slug = outcome.scenario.slug();
        let csv = std::fs::read_to_string(dir.join(format!("{slug}.csv"))).unwrap();
        assert_eq!(csv, outcome.to_csv());
        let json = std::fs::read_to_string(dir.join(format!("{slug}.json"))).unwrap();
        let summary: samr_engine::ScenarioSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(summary.scenario, outcome.scenario);
    }
    // The canonical campaign CSV is the per-scenario CSVs concatenated
    // in plan order under `# <slug>` headers…
    let campaign_csv = std::fs::read_to_string(dir.join("campaign.csv")).unwrap();
    assert_eq!(campaign_csv, campaign_csv_bytes(&spec));
    // …and the audit manifest records the plan and the spec.
    let manifest = std::fs::read_to_string(dir.join("campaign.manifest.json")).unwrap();
    let manifest: samr_engine::CampaignManifest = serde_json::from_str(&manifest).unwrap();
    assert_eq!(manifest.scenario_count, outcomes.len());
    assert_eq!(manifest.shards, 1);
    assert_eq!(manifest.spec, spec);
    assert_eq!(
        manifest.plan_hash,
        samr_engine::CampaignPlan::new(&spec, 1, samr_engine::ShardStrategy::RoundRobin).plan_hash
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Golden-file regression: the exact bytes this campaign produced at the
/// seed (pre-dimension-generic) configuration are checked in; the
/// dimension-generic refactor must keep every 2-D artifact byte-identical.
/// Regenerate the file only for a *deliberate* output change (run the
/// campaign and overwrite `tests/golden/campaign_smoke.csv`).
#[test]
fn campaign_csv_matches_pre_refactor_golden_bytes() {
    let got = campaign_csv_bytes(&two_by_two());
    let want = include_str!("golden/campaign_smoke.csv");
    assert!(
        got == want,
        "2-D campaign output drifted from the checked-in golden artifact"
    );
}

#[test]
fn mixed_dimension_campaign_runs_end_to_end_with_artifacts() {
    // Acceptance: a campaign with dim-3 scenarios runs trace → model →
    // partition → simulate and emits per-scenario CSV/JSON artifacts.
    let spec = CampaignSpec::new(TraceGenConfig {
        base_cells: 16,
        steps: 4,
        ..TraceGenConfig::smoke()
    })
    .apps([AppKind::Tp2d, AppKind::Sp3d])
    .partitioners([
        PartitionerSpec::parse("hybrid").unwrap(),
        PartitionerSpec::parse("domain-sfc").unwrap(),
    ])
    .nprocs([4]);
    assert_eq!(spec.dims, vec![2, 3]);
    let dir = std::env::temp_dir().join(format!("samr-engine-test-{}-mixed", std::process::id()));
    let (outcomes, paths) = Campaign::run_to_dir(&spec, &dir).expect("write artifacts");
    assert_eq!(outcomes.len(), 4);
    let dims: Vec<usize> = outcomes.iter().map(|o| o.scenario.dim).collect();
    assert_eq!(dims, vec![2, 2, 3, 3]);
    let names: Vec<String> = paths
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.contains(&"sp3d_hybrid_p4_g1_d3.csv".to_string()),
        "{names:?}"
    );
    assert!(names.contains(&"sp3d_domain-sfc_p4_g1_d3.json".to_string()));
    for o in &outcomes {
        assert!(o.sim.total_time > 0.0);
        assert_eq!(o.to_csv().lines().count(), o.model.len() + 1);
    }
    // 3-D campaigns are deterministic too.
    let again = Campaign::run(&spec);
    for (a, b) in outcomes.iter().zip(&again) {
        assert_eq!(a.to_csv(), b.to_csv());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A source wrapper that counts every snapshot handed out, so a test can
/// prove the driver consumed the whole stream while the driver's own
/// residency stats bound how many were ever live at once.
struct CountingSource<S> {
    inner: S,
    yielded: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl<const D: usize, S: samr_trace::SnapshotSource<D>> samr_trace::SnapshotSource<D>
    for CountingSource<S>
{
    fn meta(&self) -> &samr_trace::TraceMeta<D> {
        self.inner.meta()
    }

    fn next_snapshot(
        &mut self,
    ) -> Result<Option<samr_trace::Snapshot<D>>, samr_trace::io::TraceIoError> {
        let snap = self.inner.next_snapshot()?;
        if snap.is_some() {
            self.yielded
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(snap)
    }
}

#[test]
fn windowed_driver_bounds_live_snapshots_at_the_window() {
    use samr_sim::{simulate_source_stats, SimConfig};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    let trace = samr_engine::cached_trace(AppKind::Tp2d, &TraceGenConfig::smoke());
    let trace = trace.as_2d().expect("TP2D is 2-D");
    let cfg = SimConfig {
        nprocs: 8,
        ..SimConfig::default()
    };

    // Static partitioner, several windows: the count of live snapshots
    // never exceeds the window plus the one carried predecessor, while
    // the whole stream is consumed and the output matches the batch
    // driver bit for bit.
    let static_spec = PartitionerSpec::parse("hybrid").unwrap();
    let batch = static_spec.simulate(trace, &cfg);
    for window in [2usize, 4, 7] {
        let yielded = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut source = CountingSource {
            inner: samr_trace::MemorySource::new(trace),
            yielded: Arc::clone(&yielded),
        };
        let partitioner = static_spec.build::<2>(&cfg.machine);
        let (result, stats) =
            simulate_source_stats(&mut source, partitioner.as_ref(), &cfg, window).unwrap();
        assert_eq!(yielded.load(Ordering::Relaxed), trace.len());
        assert_eq!(stats.snapshots, trace.len());
        assert!(
            stats.peak_resident <= window + 1,
            "window {window}: {} snapshots were live",
            stats.peak_resident
        );
        assert_eq!(result, batch, "window {window} changed the metrics");
    }

    // Stateful selector: window 1, at most the current pair live.
    let meta_spec = PartitionerSpec::parse("meta").unwrap();
    assert_eq!(meta_spec.window(), 1);
    let yielded = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut source = CountingSource {
        inner: samr_trace::MemorySource::new(trace),
        yielded: Arc::clone(&yielded),
    };
    let partitioner = meta_spec.build::<2>(&cfg.machine);
    let (result, stats) =
        simulate_source_stats(&mut source, partitioner.as_ref(), &cfg, 1).unwrap();
    assert_eq!(yielded.load(Ordering::Relaxed), trace.len());
    assert!(stats.peak_resident <= 2, "{}", stats.peak_resident);
    // And the streamed sequential run equals the batch sequential run.
    assert_eq!(result.steps, meta_spec.simulate(trace, &cfg).steps);
}

#[test]
fn spilled_traces_produce_byte_identical_campaigns() {
    // A fresh trace key (seed unused anywhere else in this process) under
    // a zero byte budget is forced onto the disk-spill path; re-running
    // with the budget restored admits the same trace to memory. Both
    // paths must produce byte-identical campaign artifacts.
    let spec = two_by_two().apps([AppKind::Tp2d]);
    let spec = CampaignSpec {
        trace: TraceGenConfig {
            seed: 424242,
            ..TraceGenConfig::smoke()
        },
        ..spec
    };
    let before = samr_engine::store::trace_cache_budget();
    samr_engine::set_trace_cache_budget(0);
    let spilled = campaign_csv_bytes(&spec);
    samr_engine::set_trace_cache_budget(before);
    let admitted = campaign_csv_bytes(&spec);
    assert!(!spilled.is_empty());
    assert!(
        spilled == admitted,
        "disk-spilled and memory-admitted campaigns diverged"
    );
}

/// The policies axis is a first-class campaign dimension: it multiplies
/// the expansion, tags adaptive slugs with `_a<preset>`, round-trips
/// through the spec JSON, and leaves every default-policy artifact —
/// spec bytes, plan hash, scenario slugs — exactly as it was before the
/// axis existed.
#[test]
fn policies_axis_expands_tags_and_roundtrips() {
    let adaptive = PolicySpec::parse("adaptive:balance").unwrap();
    let spec = two_by_two().policies([PolicySpec::Static, adaptive]);
    assert_eq!(spec.len(), 2 * two_by_two().len());

    let scenarios = spec.scenarios();
    let static_slugs: Vec<String> = scenarios
        .iter()
        .filter(|s| s.policy == PolicySpec::Static)
        .map(Scenario::slug)
        .collect();
    let adaptive_slugs: Vec<String> = scenarios
        .iter()
        .filter(|s| s.policy == adaptive)
        .map(Scenario::slug)
        .collect();
    // Static scenarios keep their pre-policy slugs; adaptive ones are
    // tagged, so every slug in the doubled campaign stays unique.
    let before: Vec<String> = two_by_two()
        .scenarios()
        .iter()
        .map(Scenario::slug)
        .collect();
    assert_eq!(static_slugs, before);
    assert!(adaptive_slugs.iter().all(|s| s.ends_with("_abalance")));

    // The spec with a non-default axis round-trips through JSON; the
    // default axis serializes to the exact pre-policy bytes (no
    // "policies" key), so plan hashes of existing campaigns are stable.
    let json = serde_json::to_string(&spec).unwrap();
    assert!(json.contains("\"policies\""));
    let back: CampaignSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, spec);
    let default_json = serde_json::to_string(&two_by_two()).unwrap();
    assert!(!default_json.contains("policies"));
}

/// An adaptive-policy scenario runs end-to-end inside a campaign and
/// reports its switch accounting in the summary JSON, which a static
/// summary omits entirely.
#[test]
fn adaptive_policies_run_inside_campaigns() {
    let spec = CampaignSpec::new(TraceGenConfig::smoke())
        .apps([AppKind::Bl2d])
        .partitioners([PartitionerSpec::parse("domain-sfc").unwrap()])
        .policies([
            PolicySpec::Static,
            PolicySpec::parse("adaptive:eager").unwrap(),
        ])
        .nprocs([8]);
    let outcomes = Campaign::run(&spec);
    assert_eq!(outcomes.len(), 2);
    for o in &outcomes {
        assert!(o.sim.total_time > 0.0);
        assert_eq!(o.sim.steps.len(), o.model.len());
        let json = serde_json::to_string(&o.summary()).unwrap();
        let has_switch_fields = json.contains("\"switches\"");
        assert_eq!(has_switch_fields, o.scenario.policy != PolicySpec::Static);
        let back: samr_engine::ScenarioSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.switches, o.stats.switches());
    }
}

#[test]
fn dynamic_selectors_run_inside_campaigns() {
    let spec = CampaignSpec::new(TraceGenConfig::smoke())
        .apps([AppKind::Bl2d])
        .partitioners([PartitionerSpec::Meta, PartitionerSpec::OctantMeta])
        .nprocs([8]);
    let outcomes = Campaign::run(&spec);
    assert_eq!(outcomes.len(), 2);
    for o in &outcomes {
        assert!(o.sim.total_time > 0.0);
        assert_eq!(o.sim.steps.len(), o.model.len());
    }
}
