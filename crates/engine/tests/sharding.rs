//! Plan → shard-execute → merge integration: a campaign split across
//! shard executors and merged back must be byte-identical to the
//! unsharded run (and to the checked-in golden artifact), and the
//! merger must reject incomplete, foreign or corrupt shard sets with
//! precise errors instead of merging them wrong.

use samr_apps::{AppKind, TraceGenConfig};
use samr_engine::{
    find_shard_dirs, merge_shards, Campaign, CampaignPlan, CampaignSpec, MergeError,
    PartitionerSpec, ShardExecutor, ShardManifest, ShardStrategy,
};
use std::path::PathBuf;

fn two_by_two() -> CampaignSpec {
    CampaignSpec::new(TraceGenConfig::smoke())
        .apps([AppKind::Tp2d, AppKind::Sc2d])
        .partitioners([
            PartitionerSpec::parse("hybrid").unwrap(),
            PartitionerSpec::parse("domain-sfc").unwrap(),
        ])
        .nprocs([8])
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("samr-shard-test-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run every shard of a plan in-process and return the shard dirs.
fn run_shards(plan: &CampaignPlan, dir: &std::path::Path) -> Vec<PathBuf> {
    (0..plan.nshards)
        .map(|shard| {
            ShardExecutor {
                shard,
                resume: false,
            }
            .run_shard(plan, dir)
            .unwrap()
            .dir
        })
        .collect()
}

#[test]
fn three_shard_split_merges_to_the_golden_bytes() {
    for strategy in [ShardStrategy::RoundRobin, ShardStrategy::SizeAware] {
        let dir = temp_dir(&format!("golden-{}", strategy.name()));
        let plan = CampaignPlan::new(&two_by_two(), 3, strategy);
        let shard_dirs = run_shards(&plan, &dir);
        assert_eq!(shard_dirs.len(), 3);
        // Discovery finds the same directories the executors returned.
        let mut found = find_shard_dirs(&dir).unwrap();
        found.sort();
        let mut expected = shard_dirs.clone();
        expected.sort();
        assert_eq!(found, expected);
        let report = merge_shards(&shard_dirs, &dir).unwrap();
        assert_eq!(report.scenario_count, plan.len());
        assert_eq!(report.shards, 3);
        assert_eq!(report.plan_hash, plan.plan_hash);
        let merged = std::fs::read_to_string(&report.csv_path).unwrap();
        assert!(
            merged == include_str!("golden/campaign_smoke.csv"),
            "merged {} campaign drifted from the golden artifact",
            strategy.name()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn merged_artifacts_match_the_unsharded_run_file_for_file() {
    let sharded = temp_dir("files-sharded");
    let unsharded = temp_dir("files-unsharded");
    let spec = two_by_two();
    let plan = CampaignPlan::new(&spec, 2, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &sharded);
    merge_shards(&shard_dirs, &sharded).unwrap();
    Campaign::run_to_dir(&spec, &unsharded).unwrap();
    for planned in &plan.scenarios {
        for ext in ["csv", "json"] {
            let name = format!("{}.{ext}", planned.slug);
            let a = std::fs::read_to_string(sharded.join(&name)).unwrap();
            let b = std::fs::read_to_string(unsharded.join(&name)).unwrap();
            assert_eq!(a, b, "{name} differs between merged and unsharded runs");
        }
    }
    for name in ["campaign.csv", "campaign.pareto.json"] {
        assert_eq!(
            std::fs::read_to_string(sharded.join(name)).unwrap(),
            std::fs::read_to_string(unsharded.join(name)).unwrap(),
            "{name} differs between merged and unsharded runs"
        );
    }
    std::fs::remove_dir_all(&sharded).ok();
    std::fs::remove_dir_all(&unsharded).ok();
}

#[test]
fn pareto_front_is_byte_identical_across_shard_counts() {
    // The merger and the in-process runner write the front through one
    // code path; a 1-shard and a 3-shard merge — and the unsharded run —
    // must all land on the same golden bytes.
    let golden = include_str!("golden/campaign_pareto_smoke.json");
    let spec = two_by_two();
    for nshards in [1, 3] {
        let dir = temp_dir(&format!("pareto-{nshards}"));
        let plan = CampaignPlan::new(&spec, nshards, ShardStrategy::RoundRobin);
        let shard_dirs = run_shards(&plan, &dir);
        merge_shards(&shard_dirs, &dir).unwrap();
        let merged = std::fs::read_to_string(dir.join("campaign.pareto.json")).unwrap();
        assert!(
            merged == golden,
            "{nshards}-shard merged pareto front drifted from the golden artifact"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    let dir = temp_dir("pareto-unsharded");
    Campaign::run_to_dir(&spec, &dir).unwrap();
    let unsharded = std::fs::read_to_string(dir.join("campaign.pareto.json")).unwrap();
    assert!(
        unsharded == golden,
        "unsharded pareto front drifted from the golden artifact"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_manifests_describe_their_slice_of_the_plan() {
    let dir = temp_dir("manifest");
    let plan = CampaignPlan::new(&two_by_two(), 3, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    for (shard, shard_dir) in shard_dirs.iter().enumerate() {
        let m = ShardManifest::read(shard_dir).unwrap();
        assert_eq!(m.shard, shard);
        assert_eq!(m.nshards, 3);
        assert_eq!(m.plan_hash, plan.plan_hash);
        assert_eq!(m.total_scenarios, plan.len());
        assert_eq!(m.spec, plan.spec);
        let expected: Vec<usize> = plan.shard_scenarios(shard).iter().map(|p| p.id).collect();
        let got: Vec<usize> = m.scenarios.iter().map(|e| e.id).collect();
        assert_eq!(got, expected);
        // Every listed artifact exists.
        for e in &m.scenarios {
            assert!(shard_dir.join(format!("{}.csv", e.slug)).exists());
            assert!(shard_dir.join(format!("{}.json", e.slug)).exists());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_a_missing_shard() {
    let dir = temp_dir("missing-shard");
    let plan = CampaignPlan::new(&two_by_two(), 3, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    let err = merge_shards(&shard_dirs[..2], &dir).unwrap_err();
    match &err {
        MergeError::MissingShards { missing, nshards } => {
            assert_eq!(missing, &vec![2]);
            assert_eq!(*nshards, 3);
        }
        other => panic!("expected MissingShards, got {other:?}"),
    }
    // The message tells the operator exactly what to run.
    assert!(err.to_string().contains("--shard i/3"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_a_foreign_plan_hash() {
    let dir = temp_dir("foreign-hash");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    // Tamper: shard 1 claims to belong to a different plan, as if it
    // were left over from an older campaign in the same directory.
    let mut m = ShardManifest::read(&shard_dirs[1]).unwrap();
    m.plan_hash = "deadbeefdeadbeef".into();
    m.write(&shard_dirs[1]).unwrap();
    let err = merge_shards(&shard_dirs, &dir).unwrap_err();
    match &err {
        MergeError::PlanHashMismatch {
            expected, found, ..
        } => {
            assert_eq!(expected, &plan.plan_hash);
            assert_eq!(found, "deadbeefdeadbeef");
        }
        other => panic!("expected PlanHashMismatch, got {other:?}"),
    }
    assert!(err.to_string().contains("different campaigns"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_mixed_shard_strategies_by_name() {
    // Plan hashes are deliberately strategy-invariant, so a shard
    // assigned under a different --shard-strategy must be rejected by
    // name — not surface later as baffling scenario-ID corruption.
    let dir = temp_dir("mixed-strategy");
    let spec = two_by_two();
    let round_robin = CampaignPlan::new(&spec, 2, ShardStrategy::RoundRobin);
    let size_aware = CampaignPlan::new(&spec, 2, ShardStrategy::SizeAware);
    assert_eq!(round_robin.plan_hash, size_aware.plan_hash);
    let dir0 = ShardExecutor {
        shard: 0,
        resume: false,
    }
    .run_shard(&round_robin, &dir)
    .unwrap()
    .dir;
    // The second shard overwrites shard-1-of-2 under the other strategy.
    let dir1 = ShardExecutor {
        shard: 1,
        resume: false,
    }
    .run_shard(&size_aware, &dir)
    .unwrap()
    .dir;
    let err = merge_shards(&[dir0, dir1], &dir).unwrap_err();
    match &err {
        MergeError::StrategyMismatch {
            expected, found, ..
        } => {
            assert_eq!(*expected, ShardStrategy::RoundRobin);
            assert_eq!(*found, ShardStrategy::SizeAware);
        }
        other => panic!("expected StrategyMismatch, got {other:?}"),
    }
    assert!(err.to_string().contains("--shard-strategy"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn executors_run_behind_the_trait() {
    use samr_engine::{CampaignExecutor, ExecOutput, RayonExecutor};
    let dir = temp_dir("trait");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::RoundRobin);
    let executors: Vec<Box<dyn CampaignExecutor>> = vec![
        Box::new(RayonExecutor::default()),
        Box::new(ShardExecutor {
            shard: 0,
            resume: false,
        }),
        Box::new(ShardExecutor {
            shard: 1,
            resume: false,
        }),
    ];
    let mut shard_dirs = Vec::new();
    for executor in &executors {
        match executor.execute(&plan, &dir).unwrap() {
            ExecOutput::Outcomes(outcomes) => assert_eq!(outcomes.len(), plan.len()),
            ExecOutput::Shards(dirs) => shard_dirs.extend(dirs),
        }
    }
    let report = merge_shards(&shard_dirs, &dir).unwrap();
    assert_eq!(report.scenario_count, plan.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_duplicate_scenario_claims() {
    let dir = temp_dir("dup-scenario");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    // Tamper: shard 1 also claims shard 0's scenarios (a truncated or
    // corrupted rerun could produce this).
    let m0 = ShardManifest::read(&shard_dirs[0]).unwrap();
    let mut m1 = ShardManifest::read(&shard_dirs[1]).unwrap();
    m1.scenarios.extend(m0.scenarios.clone());
    m1.write(&shard_dirs[1]).unwrap();
    match merge_shards(&shard_dirs, &dir).unwrap_err() {
        MergeError::DuplicateScenario { id } => assert_eq!(id, m0.scenarios[0].id),
        other => panic!("expected DuplicateScenario, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_duplicate_shards_and_empty_sets() {
    let dir = temp_dir("dup-shard");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    let doubled = vec![
        shard_dirs[0].clone(),
        shard_dirs[1].clone(),
        shard_dirs[0].clone(),
    ];
    match merge_shards(&doubled, &dir).unwrap_err() {
        MergeError::DuplicateShard { shard } => assert_eq!(shard, 0),
        other => panic!("expected DuplicateShard, got {other:?}"),
    }
    match merge_shards(&[], &dir).unwrap_err() {
        MergeError::NoShards => {}
        other => panic!("expected NoShards, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_a_directory_without_a_manifest() {
    let dir = temp_dir("no-manifest");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::RoundRobin);
    let mut shard_dirs = run_shards(&plan, &dir);
    // A directory that is not even named like a shard: not a shard
    // directory at all.
    let bogus = dir.join("scratch");
    std::fs::create_dir_all(&bogus).unwrap();
    shard_dirs.push(bogus.clone());
    match merge_shards(&shard_dirs, &dir).unwrap_err() {
        MergeError::MissingManifest(d) => assert_eq!(d, bogus),
        other => panic!("expected MissingManifest, got {other:?}"),
    }
    // An *empty* shard-named directory is the wreckage of a worker
    // killed before its first scenario landed (the executor creates the
    // directory up front): resumable, with the rerun command.
    shard_dirs.pop();
    let empty = dir.join("shard-9-of-9");
    std::fs::create_dir_all(&empty).unwrap();
    shard_dirs.push(empty.clone());
    match merge_shards(&shard_dirs, &dir).unwrap_err() {
        MergeError::ShardIncomplete {
            dir: d,
            shard,
            nshards,
            rerun,
            ..
        } => {
            assert_eq!(d, empty);
            assert_eq!((shard, nshards), (9, 9));
            assert!(rerun.contains("--resume"), "{rerun}");
        }
        other => panic!("expected ShardIncomplete, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_flags_deleted_artifacts_as_resumable_incompleteness() {
    // Deleted outputs are a resumable gap, not corruption: the merger
    // must name the missing scenario and hand the operator the exact
    // `--resume` invocation that fills it.
    let dir = temp_dir("missing-artifact");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    let victim = &plan.shard_scenarios(0)[0].slug;
    std::fs::remove_file(shard_dirs[0].join(format!("{victim}.csv"))).unwrap();
    let err = merge_shards(&shard_dirs, &dir).unwrap_err();
    match &err {
        MergeError::ShardIncomplete {
            shard,
            nshards,
            missing,
            rerun,
            ..
        } => {
            assert_eq!((*shard, *nshards), (0, 2));
            assert_eq!(missing, &vec![victim.clone()]);
            assert!(rerun.contains("--shard 0/2"), "{rerun}");
            assert!(rerun.contains("--resume"), "{rerun}");
        }
        other => panic!("expected ShardIncomplete, got {other:?}"),
    }
    assert!(err.to_string().contains("resumable"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_flags_torn_artifact_bytes_as_corruption() {
    // Bytes that disagree with their completion record cannot be
    // produced by a crash (writes are tmp-then-rename): that is genuine
    // corruption and must be typed as such, not merged and not called
    // merely incomplete.
    let dir = temp_dir("torn-artifact");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    let victim = &plan.shard_scenarios(1)[0].slug;
    let path = shard_dirs[1].join(format!("{victim}.csv"));
    let whole = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &whole[..whole.len() / 2]).unwrap();
    let err = merge_shards(&shard_dirs, &dir).unwrap_err();
    match &err {
        MergeError::CorruptArtifact { detail, rerun, .. } => {
            assert!(detail.contains("digest"), "{detail}");
            assert!(rerun.contains("--resume"), "{rerun}");
        }
        other => panic!("expected CorruptArtifact, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_flags_a_manifestless_executed_shard_as_resumable() {
    // A shard killed before its manifest write (the manifest is the
    // last artifact) has records and CSVs but no manifest: incomplete,
    // not "not a shard directory".
    let dir = temp_dir("killed-shard");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    std::fs::remove_file(shard_dirs[1].join("shard.manifest.json")).unwrap();
    let err = merge_shards(&shard_dirs, &dir).unwrap_err();
    match &err {
        MergeError::ShardIncomplete { shard, rerun, .. } => {
            assert_eq!(*shard, 1);
            assert!(rerun.contains("--shard 1/2"), "{rerun}");
        }
        other => panic!("expected ShardIncomplete, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_shard_rerun_command_recovers_the_strategy_from_a_sibling() {
    // A manifestless shard cannot declare its own --shard-strategy; the
    // rerun command must recover it from a surviving sibling, or a
    // size-aware shard would be re-executed over the round-robin slice.
    let dir = temp_dir("killed-strategy");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::SizeAware);
    let shard_dirs = run_shards(&plan, &dir);
    std::fs::remove_file(shard_dirs[0].join("shard.manifest.json")).unwrap();
    match merge_shards(&shard_dirs, &dir).unwrap_err() {
        MergeError::ShardIncomplete { rerun, .. } => {
            assert!(rerun.contains("--shard-strategy size-aware"), "{rerun}");
            assert!(rerun.contains("--shard 0/2"), "{rerun}");
        }
        other => panic!("expected ShardIncomplete, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resumed_shard_skips_complete_scenarios_and_merges_to_golden() {
    // Simulate a shard killed mid-run: one scenario finished (stamped),
    // the other's artifacts and the manifest are gone. --resume must
    // re-execute exactly the remainder and the merge must match the
    // golden bytes.
    let dir = temp_dir("resume-shard");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    let scenarios = plan.shard_scenarios(0);
    assert_eq!(scenarios.len(), 2);
    let victim = &scenarios[1].slug;
    for name in [
        format!("{victim}.csv"),
        format!("{victim}.json"),
        format!("{victim}.done.json"),
        "shard.manifest.json".to_string(),
    ] {
        std::fs::remove_file(shard_dirs[0].join(name)).unwrap();
    }
    let rerun = ShardExecutor {
        shard: 0,
        resume: true,
    }
    .run_shard(&plan, &dir)
    .unwrap();
    assert_eq!(rerun.skipped, 1, "the stamped scenario must be skipped");
    assert_eq!(rerun.outcomes.len(), 1, "only the victim re-executes");
    let report = merge_shards(&shard_dirs, &dir).unwrap();
    let merged = std::fs::read_to_string(&report.csv_path).unwrap();
    assert!(
        merged == include_str!("golden/campaign_smoke.csv"),
        "resumed + merged campaign drifted from the golden artifact"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_reruns_torn_artifacts_instead_of_trusting_them() {
    let dir = temp_dir("resume-torn");
    let plan = CampaignPlan::new(&two_by_two(), 2, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    let victim = &plan.shard_scenarios(0)[0].slug;
    // Truncate the CSV but leave its completion record: resume must
    // notice the digest mismatch and re-execute the scenario.
    let path = shard_dirs[0].join(format!("{victim}.csv"));
    let whole = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &whole[..whole.len() / 3]).unwrap();
    let rerun = ShardExecutor {
        shard: 0,
        resume: true,
    }
    .run_shard(&plan, &dir)
    .unwrap();
    assert_eq!(rerun.skipped, 1, "the intact scenario is skipped");
    assert_eq!(rerun.outcomes.len(), 1, "the torn scenario re-executes");
    assert_eq!(std::fs::read_to_string(&path).unwrap(), whole);
    let report = merge_shards(&shard_dirs, &dir).unwrap();
    let merged = std::fs::read_to_string(&report.csv_path).unwrap();
    assert!(merged == include_str!("golden/campaign_smoke.csv"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_discovery_rejects_mixed_shard_families_by_name() {
    // A stale shard-0-of-2 next to a fresh 3-shard family must be
    // rejected by name at discovery, not surface as duplicate-index
    // corruption during validation.
    let dir = temp_dir("mixed-family");
    let plan = CampaignPlan::new(&two_by_two(), 3, ShardStrategy::RoundRobin);
    run_shards(&plan, &dir);
    std::fs::create_dir_all(dir.join("shard-0-of-2")).unwrap();
    match find_shard_dirs(&dir).unwrap_err() {
        MergeError::MixedShardFamilies { families } => assert_eq!(families, vec![2, 3]),
        other => panic!("expected MixedShardFamilies, got {other:?}"),
    }
    // Malformed shard-like names are not shard directories at all.
    std::fs::remove_dir_all(dir.join("shard-0-of-2")).unwrap();
    std::fs::create_dir_all(dir.join("shard-x-of-y")).unwrap();
    std::fs::create_dir_all(dir.join("shard-0-of-3-backup")).unwrap();
    let found = find_shard_dirs(&dir).unwrap();
    assert_eq!(found.len(), 3, "{found:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_shard_plan_executes_and_merges_too() {
    // The degenerate 1-shard case: shard 0 is the whole campaign and the
    // merge is a plain reassembly.
    let dir = temp_dir("one-shard");
    let plan = CampaignPlan::new(&two_by_two(), 1, ShardStrategy::RoundRobin);
    let shard_dirs = run_shards(&plan, &dir);
    let report = merge_shards(&shard_dirs, &dir).unwrap();
    assert_eq!(report.scenario_count, plan.len());
    let merged = std::fs::read_to_string(&report.csv_path).unwrap();
    assert!(merged == include_str!("golden/campaign_smoke.csv"));
    std::fs::remove_dir_all(&dir).ok();
}
