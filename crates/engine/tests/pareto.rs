//! Dominance-kernel properties and the golden Pareto artifact: the
//! front computation must satisfy the defining laws of Pareto
//! optimality on arbitrary (tie-heavy) objective sets, and the
//! `campaign.pareto.json` the smoke campaign writes must match the
//! checked-in golden bytes — the same contract `campaign.csv` lives
//! under.

use proptest::prelude::*;
use samr_apps::{AppKind, TraceGenConfig};
use samr_engine::pareto::{dominates, front_mask, CAMPAIGN_PARETO};
use samr_engine::{
    compute_front, Campaign, CampaignSpec, Objective, ParetoEntry, PartitionerSpec, Scenario,
    ScenarioSummary, ShapeStats,
};
use samr_sim::SimConfig;

/// A synthetic summary whose four objective values are exactly `v`.
fn summary_with(v: [f64; 4]) -> ScenarioSummary {
    let scenario = Scenario::new(
        AppKind::Tp2d,
        TraceGenConfig::smoke(),
        PartitionerSpec::parse("hybrid").unwrap(),
        SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        },
    );
    ScenarioSummary {
        partitioner_name: "hybrid".into(),
        steps: 1,
        total_time: 1.0,
        mean_imbalance: v[0],
        mean_rel_comm: v[1],
        mean_rel_migration: v[2],
        mean_partition_cost: v[3],
        switches: 0,
        switch_migration_cells: 0,
        comm_shape: ShapeStats::compare(&[0.0, 1.0], &[0.0, 1.0]),
        migration_shape: ShapeStats::compare(&[0.0, 1.0], &[0.0, 1.0]),
        scenario,
    }
}

fn entries(vectors: &[[f64; 4]]) -> Vec<ParetoEntry> {
    vectors
        .iter()
        .enumerate()
        .map(|(id, v)| ParetoEntry {
            id,
            slug: format!("s{id}"),
            summary: summary_with(*v),
        })
        .collect()
}

/// Objective vectors drawn from a small discrete value set so ties and
/// exact duplicates are common — the cases a float-typo'd dominance
/// kernel gets wrong.
fn arb_vectors() -> impl Strategy<Value = Vec<[f64; 4]>> {
    prop::collection::vec((0u8..4, 0u8..4, 0u8..4, 0u8..4), 1..24).prop_map(|vs| {
        vs.into_iter()
            .map(|(a, b, c, d)| [a, b, c, d].map(f64::from))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No two front members dominate each other, and dominance itself
    /// is irreflexive — the front is an antichain of the dominance
    /// order.
    #[test]
    fn front_members_are_mutually_non_dominated(vs in arb_vectors()) {
        let points: Vec<Vec<f64>> = vs.iter().map(|v| v.to_vec()).collect();
        let mask = front_mask(&points);
        prop_assert!(mask.iter().any(|&m| m), "a nonempty set has a front");
        for (i, a) in points.iter().enumerate() {
            prop_assert!(!dominates(a, a), "dominance must be irreflexive");
            for (j, b) in points.iter().enumerate() {
                if mask[i] && mask[j] {
                    prop_assert!(
                        !dominates(a, b),
                        "front member {i} dominates front member {j}"
                    );
                }
            }
        }
    }

    /// Every off-front point is dominated by at least one *front*
    /// point (dominance is a strict partial order, so chains of
    /// dominators terminate on the front), and every front point is
    /// dominated by nobody.
    #[test]
    fn every_dominated_point_has_a_front_dominator(vs in arb_vectors()) {
        let points: Vec<Vec<f64>> = vs.iter().map(|v| v.to_vec()).collect();
        let mask = front_mask(&points);
        for (i, p) in points.iter().enumerate() {
            if mask[i] {
                prop_assert!(points.iter().all(|q| !dominates(q, p)));
            } else {
                prop_assert!(
                    points
                        .iter()
                        .zip(&mask)
                        .any(|(q, &m)| m && dominates(q, p)),
                    "dominated point {i} has no front dominator"
                );
            }
        }
    }

    /// Exact duplicates never dominate each other: tied trade-offs are
    /// all on the front or all off it, deterministically.
    #[test]
    fn duplicate_vectors_share_one_verdict(vs in arb_vectors(), dup in 0usize..24) {
        let mut points: Vec<Vec<f64>> = vs.iter().map(|v| v.to_vec()).collect();
        let copy = points[dup % points.len()].clone();
        points.push(copy.clone());
        let mask = front_mask(&points);
        for (p, &m) in points.iter().zip(&mask) {
            if *p == copy {
                prop_assert_eq!(m, *mask.last().unwrap(), "tied vectors disagree");
            }
        }
    }

    /// `compute_front` agrees with the raw mask and records, for every
    /// dominated point, the lowest-id front member that dominates it.
    #[test]
    fn compute_front_records_lowest_id_front_dominators(vs in arb_vectors()) {
        let es = entries(&vs);
        let f = compute_front("prop", &Objective::ALL, &es).unwrap();
        let points: Vec<Vec<f64>> = vs.iter().map(|v| v.to_vec()).collect();
        let mask = front_mask(&points);
        for (i, p) in f.points.iter().enumerate() {
            prop_assert_eq!(p.on_front, mask[i]);
            prop_assert_eq!(f.front.contains(&p.id), p.on_front);
            match p.dominated_by {
                None => prop_assert!(p.on_front),
                Some(d) => {
                    prop_assert!(f.front.contains(&d), "dominator {d} is off-front");
                    prop_assert!(dominates(&points[d], &points[i]));
                    let lowest = points
                        .iter()
                        .zip(&mask)
                        .position(|(q, &m)| m && dominates(q, &points[i]))
                        .unwrap();
                    prop_assert_eq!(d, lowest, "not the lowest-id dominator");
                }
            }
        }
    }
}

/// The smoke campaign's front artifact must match the golden bytes —
/// regenerate with
/// `cargo run --release -- campaign --smoke --out /tmp/c && cp
/// /tmp/c/campaign.pareto.json crates/engine/tests/golden/campaign_pareto_smoke.json`
/// when an intentional change shifts it.
#[test]
fn smoke_campaign_front_matches_the_golden_bytes() {
    let spec = CampaignSpec::new(TraceGenConfig::smoke())
        .apps([AppKind::Tp2d, AppKind::Sc2d])
        .partitioners([
            PartitionerSpec::parse("hybrid").unwrap(),
            PartitionerSpec::parse("domain-sfc").unwrap(),
        ])
        .nprocs([8]);
    let dir = std::env::temp_dir().join(format!("samr-pareto-golden-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Campaign::run_to_dir(&spec, &dir).unwrap();
    let written = std::fs::read_to_string(dir.join(CAMPAIGN_PARETO)).unwrap();
    assert!(
        written == include_str!("golden/campaign_pareto_smoke.json"),
        "campaign.pareto.json drifted from the golden artifact"
    );
    std::fs::remove_dir_all(&dir).ok();
}
