//! The repartitioning-policy registry: how a scenario's partitioner is
//! *driven over time*.
//!
//! A [`PolicySpec`] is the serializable description of a
//! [`samr_sim::policy::PartitionPolicy`]: either the static policy
//! (one partitioner for the whole run — exactly the engine's historical
//! behavior) or an adaptive policy preset
//! ([`samr_meta::AdaptiveConfig`]) that watches observed per-snapshot
//! imbalance and communication and switches between the scenario's own
//! partitioner and a balance-first fallback mid-run, paying each
//! switch's migration bill. Campaigns sweep policies as a first-class
//! axis ([`crate::CampaignSpec::policies`]), orthogonal to the
//! partitioner axis: `partitioners × policies` asks, for every
//! partitioner, whether *adapting away from it* under pressure beats
//! staying put.

use crate::spec::PartitionerSpec;
use samr_meta::{adaptive_presets, AdaptiveConfig, AdaptivePolicy};
use samr_sim::{simulate_source_stats, SimConfig, SimResult, StreamStats};
use samr_trace::io::TraceIoError;
use samr_trace::SnapshotSource;
use serde::{Deserialize, Serialize};

/// A named, serializable repartitioning-policy specification.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// One partitioner for the whole run (the engine's historical
    /// behavior; the default policy axis is `[Static]`).
    Static,
    /// Adaptive repartitioning: run the scenario's partitioner until
    /// observed metrics cross the config's hysteresis thresholds, then
    /// switch to the balanced fallback (and back), charging each
    /// switch's full migration volume.
    Adaptive(AdaptiveConfig),
}

impl PolicySpec {
    /// Every name [`PolicySpec::parse`] accepts, with the spec it
    /// produces: `static` plus one `adaptive:NAME` entry per
    /// [`adaptive_presets`] preset.
    pub fn registry() -> Vec<(String, PolicySpec)> {
        let mut out = vec![("static".to_string(), Self::Static)];
        for (name, cfg) in adaptive_presets() {
            out.push((format!("adaptive:{name}"), Self::Adaptive(cfg)));
        }
        out
    }

    /// Parse a spec from its registry name (`static`,
    /// `adaptive:balance`, `adaptive:eager`, `adaptive:patient`; bare
    /// `adaptive` is the default preset).
    pub fn parse(name: &str) -> Result<Self, String> {
        let canonical = match name {
            "adaptive" => "adaptive:balance",
            other => other,
        };
        Self::registry()
            .into_iter()
            .find(|(n, _)| n == canonical)
            .map(|(_, s)| s)
            .ok_or_else(|| {
                let names: Vec<String> = Self::registry().into_iter().map(|(n, _)| n).collect();
                format!(
                    "unknown policy '{name}' (expected one of {})",
                    names.join(", ")
                )
            })
    }

    /// The registry name of the policy (`adaptive:custom` for an
    /// adaptive config that matches no preset).
    pub fn name(&self) -> String {
        if let Some((name, _)) = Self::registry().into_iter().find(|(_, s)| s == self) {
            return name;
        }
        match self {
            Self::Static => "static".to_string(),
            Self::Adaptive(_) => "adaptive:custom".to_string(),
        }
    }

    /// The scenario-slug suffix this policy appends: empty for the
    /// static policy (historical slugs stay byte-identical), `_aNAME`
    /// for adaptive presets (`_abalance`, `_aeager`, …) — file-safe by
    /// construction.
    pub fn slug_suffix(&self) -> String {
        match self {
            Self::Static => String::new(),
            Self::Adaptive(_) => {
                let name = self.name();
                let preset = name.strip_prefix("adaptive:").unwrap_or("custom");
                format!("_a{preset}")
            }
        }
    }

    /// `true` for the static policy — the only policy whose scenarios
    /// may simulate snapshot-parallel inside the streaming window.
    pub fn is_static(&self) -> bool {
        matches!(self, Self::Static)
    }

    /// Simulate a snapshot stream: the scenario's partitioner driven by
    /// this policy. The static policy reproduces
    /// [`PartitionerSpec::simulate_source`] byte for byte (windowed
    /// snapshot-parallel for static partitioners, strictly sequential
    /// for stateful selectors); adaptive policies always run
    /// sequentially at window 1, because a pending switch must see every
    /// snapshot's observed metrics before the next is partitioned.
    pub fn simulate_source<const D: usize>(
        &self,
        partitioner: &PartitionerSpec,
        source: &mut (dyn SnapshotSource<D> + '_),
        cfg: &SimConfig,
    ) -> Result<(SimResult, StreamStats), TraceIoError> {
        let local = partitioner.build::<D>(&cfg.machine);
        match self {
            Self::Static => {
                simulate_source_stats(source, local.as_ref(), cfg, partitioner.window())
            }
            Self::Adaptive(acfg) => {
                let mut policy = AdaptivePolicy::<D>::new(local, *acfg);
                samr_sim::simulate_policy_source_stats(source, &mut policy, cfg, 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_apps::{generate_trace, AppKind, TraceGenConfig};
    use samr_trace::MemorySource;

    #[test]
    fn every_registry_name_parses_to_itself() {
        let registry = PolicySpec::registry();
        assert_eq!(registry[0].0, "static");
        assert_eq!(registry.len(), 1 + adaptive_presets().len());
        for (name, spec) in registry {
            assert_eq!(PolicySpec::parse(&name).unwrap(), spec);
            assert_eq!(spec.name(), name);
            assert!(
                !spec.slug_suffix().contains([':', '/', ' ']),
                "suffix {} is not file-safe",
                spec.slug_suffix()
            );
        }
    }

    #[test]
    fn aliases_and_unknown_names() {
        assert_eq!(
            PolicySpec::parse("adaptive").unwrap(),
            PolicySpec::Adaptive(AdaptiveConfig::balance())
        );
        let err = PolicySpec::parse("sometimes").unwrap_err();
        assert!(
            err.contains("static") && err.contains("adaptive:patient"),
            "{err}"
        );
    }

    #[test]
    fn slug_suffixes_are_stable() {
        assert_eq!(PolicySpec::Static.slug_suffix(), "");
        assert_eq!(
            PolicySpec::Adaptive(AdaptiveConfig::eager()).slug_suffix(),
            "_aeager"
        );
        // A hand-tuned config off the preset registry still slugs.
        let custom = PolicySpec::Adaptive(AdaptiveConfig {
            imbalance_enter: 9.0,
            ..AdaptiveConfig::balance()
        });
        assert_eq!(custom.name(), "adaptive:custom");
        assert_eq!(custom.slug_suffix(), "_acustom");
    }

    #[test]
    fn policies_roundtrip_through_json() {
        for (_, spec) in PolicySpec::registry() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "{json}");
        }
    }

    #[test]
    fn static_policy_matches_the_partitioner_spec_driver() {
        let trace = generate_trace(AppKind::Tp2d, &TraceGenConfig::smoke());
        let cfg = SimConfig {
            nprocs: 8,
            ..SimConfig::default()
        };
        for name in ["hybrid", "domain-sfc", "meta"] {
            let part = PartitionerSpec::parse(name).unwrap();
            let (via_policy, stats) = PolicySpec::Static
                .simulate_source::<2>(&part, &mut MemorySource::new(&trace), &cfg)
                .unwrap();
            let direct = part.simulate(&trace, &cfg);
            assert_eq!(via_policy, direct, "{name}");
            assert!(stats.switch_events.is_empty());
        }
    }

    #[test]
    fn adaptive_policy_runs_and_reports_stats() {
        let trace = generate_trace(AppKind::Bl2d, &TraceGenConfig::smoke());
        let cfg = SimConfig {
            nprocs: 8,
            ..SimConfig::default()
        };
        let part = PartitionerSpec::parse("domain-sfc").unwrap();
        let spec = PolicySpec::Adaptive(AdaptiveConfig::balance());
        let (res, stats) = spec
            .simulate_source::<2>(&part, &mut MemorySource::new(&trace), &cfg)
            .unwrap();
        assert!(res.total_time > 0.0);
        assert_eq!(stats.snapshots, trace.len());
        assert_eq!(stats.switches(), stats.switch_events.len());
    }
}
