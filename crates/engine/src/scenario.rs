//! One fully described pipeline run and its measured outcome.

use crate::spec::PartitionerSpec;
use crate::store::{cached_model, cached_source, cached_trace};
use crate::validation::ShapeStats;
use samr_apps::{AppKind, TraceGenConfig};
use samr_core::ModelState;
use samr_sim::{SimConfig, SimResult};
use samr_trace::{shared_source, AnySnapshotSource, HierarchyTrace, MemorySource};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A statically described experiment: everything needed to reproduce one
/// trace → model → partition → simulate run. Serializable, so scenarios
/// can be stored next to their artifacts and re-run from the description
/// alone.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Which application kernel produces the trace.
    pub app: AppKind,
    /// Spatial dimension of the scenario's index space (derived from the
    /// application; recorded explicitly so artifacts are self-describing
    /// and mixed-dimension campaigns are visible at a glance).
    pub dim: usize,
    /// Trace-generation configuration (steps, levels, clustering, seed).
    pub trace: TraceGenConfig,
    /// Which partitioner to run.
    pub partitioner: PartitionerSpec,
    /// Simulation configuration (processor count, ghost width, machine).
    pub sim: SimConfig,
}

impl Scenario {
    /// Build a scenario, deriving the dimension from the application.
    pub fn new(
        app: AppKind,
        trace: TraceGenConfig,
        partitioner: PartitionerSpec,
        sim: SimConfig,
    ) -> Self {
        Self {
            app,
            dim: app.dim(),
            trace,
            partitioner,
            sim,
        }
    }

    /// The machine tag of the scenario's slug: empty for the default
    /// (`uniform`) machine so historical artifact paths stay stable, the
    /// preset name for every other registry machine, `custom` otherwise.
    pub fn machine_name(&self) -> &'static str {
        self.sim.machine.preset_name().unwrap_or("custom")
    }

    /// Stable slug identifying the scenario inside its campaign, used
    /// for artifact file names: `bl2d_hybrid_p16_g1`. Non-default
    /// machines append `_m<machine>` and 3-D scenarios `_d3`;
    /// default-machine 2-D slugs are unchanged from the 2-D-only era, so
    /// existing artifact paths stay stable.
    pub fn slug(&self) -> String {
        let machine_suffix = if self.sim.machine == samr_sim::MachineModel::default() {
            String::new()
        } else {
            format!("_m{}", self.machine_name())
        };
        let dim_suffix = if self.dim == 3 { "_d3" } else { "" };
        format!(
            "{}_{}_p{}_g{}{}{}",
            self.app.name().to_lowercase(),
            self.partitioner.slug(),
            self.sim.nprocs,
            self.sim.ghost_width,
            machine_suffix,
            dim_suffix,
        )
    }

    /// Execute the scenario against the shared trace/model store via the
    /// streaming path: the trace arrives as a snapshot stream (in-memory
    /// when the store's byte budget admits it, straight from the spill
    /// file otherwise), is windowed through the partitioner, and never
    /// needs to be whole in this scenario's memory. A spill-file I/O
    /// failure retries from the in-memory store (identical output)
    /// rather than aborting the campaign.
    pub fn run(&self) -> ScenarioOutcome {
        assert_eq!(
            self.dim,
            self.app.dim(),
            "scenario dim {} does not match {}'s dimension",
            self.dim,
            self.app.name()
        );
        let model = cached_model(self.app, &self.trace);
        let simulate = |source: &mut AnySnapshotSource| match source {
            AnySnapshotSource::D2(s) => self.partitioner.simulate_source::<2>(s, &self.sim),
            AnySnapshotSource::D3(s) => self.partitioner.simulate_source::<3>(s, &self.sim),
        };
        let sim = cached_source(self.app, &self.trace)
            .and_then(|mut source| simulate(&mut source))
            .unwrap_or_else(|_| {
                // Disk trouble (full temp dir, reaped spill file) must
                // not kill a multi-scenario sweep: regenerate in memory.
                let mut source = shared_source(cached_trace(self.app, &self.trace));
                simulate(&mut source).expect("in-memory snapshot sources cannot fail")
            });
        outcome_from(self, sim, model)
    }
}

/// Assemble a scenario outcome from its simulation result and shared
/// model series (the tail shared by the streaming and batch paths).
fn outcome_from(
    scenario: &Scenario,
    sim: SimResult,
    model: Arc<Vec<ModelState>>,
) -> ScenarioOutcome {
    // Step 0 has neither a migration measurement nor a β_m (no previous
    // hierarchy); shape statistics compare from step 1 on.
    let beta_c: Vec<f64> = model.iter().skip(1).map(|s| s.beta_c).collect();
    let beta_m: Vec<f64> = model.iter().skip(1).map(|s| s.beta_m).collect();
    let rel_comm: Vec<f64> = sim.steps.iter().skip(1).map(|s| s.rel_comm).collect();
    let rel_mig: Vec<f64> = sim.steps.iter().skip(1).map(|s| s.rel_migration).collect();
    ScenarioOutcome {
        comm_shape: ShapeStats::compare(&beta_c, &rel_comm),
        migration_shape: ShapeStats::compare(&beta_m, &rel_mig),
        scenario: scenario.clone(),
        sim,
        model,
    }
}

/// Execute a scenario on an explicit trace and model series (the shared
/// path behind the figure-regeneration bundle) — a [`MemorySource`]
/// over the trace through the same windowed driver as [`Scenario::run`].
///
/// Static partitioners are simulated snapshot-parallel within the
/// window; stateful selectors (whose decisions depend on invocation
/// order) run strictly sequentially. Both paths produce identical
/// metrics for a static partitioner, so the choice is an execution
/// detail, not a semantic one.
pub(crate) fn run_on_trace<const D: usize>(
    scenario: &Scenario,
    trace: &HierarchyTrace<D>,
    model: Arc<Vec<ModelState>>,
) -> ScenarioOutcome {
    let sim = scenario
        .partitioner
        .simulate_source(&mut MemorySource::new(trace), &scenario.sim)
        .expect("in-memory snapshot sources cannot fail");
    outcome_from(scenario, sim, model)
}

/// The measured outcome of one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The scenario that produced this outcome.
    pub scenario: Scenario,
    /// Per-step simulation metrics under the scenario's partitioner.
    pub sim: SimResult,
    /// Per-step model states over the same trace (shared across the
    /// scenarios of one application).
    pub model: Arc<Vec<ModelState>>,
    /// Shape statistics: β_c vs. measured relative communication.
    pub comm_shape: ShapeStats,
    /// Shape statistics: β_m vs. measured relative migration.
    pub migration_shape: ShapeStats,
}

impl ScenarioOutcome {
    /// Render the per-step series as CSV: model penalties next to the
    /// measured metrics, one row per coarse step.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "step,beta_l,beta_c,beta_m,rel_comm,rel_migration,load_imbalance,comm_cells,migration_cells,step_time,total_points\n",
        );
        for (m, s) in self.model.iter().zip(&self.sim.steps) {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{:.1},{}\n",
                m.step,
                m.beta_l,
                m.beta_c,
                m.beta_m,
                s.rel_comm,
                s.rel_migration,
                s.load_imbalance,
                s.comm_cells,
                s.migration_cells,
                s.step_time,
                s.total_points,
            ));
        }
        out
    }

    /// The serializable summary recorded as the scenario's JSON artifact.
    pub fn summary(&self) -> ScenarioSummary {
        let n = self.sim.steps.len().max(1) as f64;
        ScenarioSummary {
            scenario: self.scenario.clone(),
            partitioner_name: self.sim.partitioner.clone(),
            steps: self.sim.steps.len(),
            total_time: self.sim.total_time,
            mean_imbalance: self.sim.steps.iter().map(|s| s.load_imbalance).sum::<f64>() / n,
            mean_rel_comm: self.sim.steps.iter().map(|s| s.rel_comm).sum::<f64>() / n,
            mean_rel_migration: self.sim.steps.iter().map(|s| s.rel_migration).sum::<f64>() / n,
            mean_partition_cost: self.sim.steps.iter().map(|s| s.partition_cost).sum::<f64>() / n,
            comm_shape: self.comm_shape,
            migration_shape: self.migration_shape,
        }
    }

    /// One-line human-readable digest (printed by the CLI).
    pub fn digest(&self) -> String {
        let s = self.summary();
        format!(
            "{:24} total_time={:10.0} imbalance={:.3} rel_comm={:.4} rel_mig={:.4} comm_r={:.3} mig_r={:.3}",
            self.scenario.slug(),
            s.total_time,
            s.mean_imbalance,
            s.mean_rel_comm,
            s.mean_rel_migration,
            s.comm_shape.correlation,
            s.migration_shape.correlation,
        )
    }
}

/// Aggregate summary of a scenario outcome — the JSON artifact schema.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioSummary {
    /// The scenario description (reproducible from this alone).
    pub scenario: Scenario,
    /// Full configured partitioner name.
    pub partitioner_name: String,
    /// Number of simulated coarse steps.
    pub steps: usize,
    /// Total estimated execution time (machine-model units).
    pub total_time: f64,
    /// Mean load imbalance over the run.
    pub mean_imbalance: f64,
    /// Mean grid-relative communication.
    pub mean_rel_comm: f64,
    /// Mean grid-relative migration.
    pub mean_rel_migration: f64,
    /// Mean partitioner-invocation cost per coarse step (machine-model
    /// units; the regrid-overhead axis of the Pareto analysis).
    pub mean_partition_cost: f64,
    /// β_c vs. measured communication shape statistics.
    pub comm_shape: ShapeStats,
    /// β_m vs. measured migration shape statistics.
    pub migration_shape: ShapeStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::new(
            AppKind::Bl2d,
            TraceGenConfig::smoke(),
            PartitionerSpec::parse("hybrid").unwrap(),
            SimConfig {
                nprocs: 4,
                ..SimConfig::default()
            },
        )
    }

    fn scenario_3d() -> Scenario {
        Scenario::new(
            AppKind::Sp3d,
            TraceGenConfig {
                base_cells: 16,
                steps: 6,
                ..TraceGenConfig::smoke()
            },
            PartitionerSpec::parse("hybrid").unwrap(),
            SimConfig {
                nprocs: 4,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let s = scenario();
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn slug_is_stable_and_file_safe() {
        assert_eq!(scenario().slug(), "bl2d_hybrid_p4_g1");
        assert_eq!(scenario_3d().slug(), "sp3d_hybrid_p4_g1_d3");
    }

    #[test]
    fn non_default_machines_tag_the_slug() {
        use samr_sim::MachineModel;
        let mut s = scenario();
        assert_eq!(s.machine_name(), "uniform");
        s.sim.machine = MachineModel::slow_network();
        assert_eq!(s.machine_name(), "slow-net");
        assert_eq!(s.slug(), "bl2d_hybrid_p4_g1_mslow-net");
        s.sim.machine = MachineModel {
            cell_update: 42.0,
            ..MachineModel::default()
        };
        assert_eq!(s.slug(), "bl2d_hybrid_p4_g1_mcustom");
        let mut s3 = scenario_3d();
        s3.sim.machine = MachineModel::fast_network();
        assert_eq!(s3.slug(), "sp3d_hybrid_p4_g1_mfast-net_d3");
    }

    #[test]
    fn preset_partitioners_slug_file_safely_inside_scenarios() {
        let mut s = scenario();
        s.partitioner = PartitionerSpec::parse("domain-sfc:morton").unwrap();
        assert_eq!(s.slug(), "bl2d_domain-sfc-morton_p4_g1");
    }

    #[test]
    fn outcome_rows_match_trace_length() {
        let out = scenario().run();
        assert_eq!(out.sim.steps.len(), out.model.len());
        // Header plus one row per step.
        assert_eq!(out.to_csv().lines().count(), out.model.len() + 1);
    }

    #[test]
    fn three_d_scenario_runs_end_to_end() {
        let out = scenario_3d().run();
        assert_eq!(out.scenario.dim, 3);
        assert!(out.sim.total_time > 0.0);
        assert_eq!(out.sim.steps.len(), out.model.len());
        assert_eq!(out.to_csv().lines().count(), out.model.len() + 1);
        // Metrics stay in their defined ranges in 3-D too.
        for s in &out.sim.steps {
            assert!(s.load_imbalance >= 1.0 - 1e-12);
            assert!(s.rel_comm >= 0.0);
            assert!(s.rel_migration >= 0.0);
        }
    }

    #[test]
    fn stateful_and_static_specs_both_run() {
        let mut meta = scenario();
        meta.partitioner = PartitionerSpec::Meta;
        let out = meta.run();
        assert!(out.sim.total_time > 0.0);
        assert_eq!(out.sim.nprocs, 4);
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let out = scenario().run();
        let json = serde_json::to_string_pretty(&out.summary()).unwrap();
        let back: ScenarioSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.scenario, out.scenario);
        assert_eq!(back.steps, out.sim.steps.len());
    }
}
