//! One fully described pipeline run and its measured outcome.

use crate::policy::PolicySpec;
use crate::spec::PartitionerSpec;
use crate::store::{cached_model, cached_source, cached_trace};
use crate::validation::ShapeStats;
use samr_apps::{AppKind, TraceGenConfig};
use samr_core::ModelState;
use samr_sim::{SimConfig, SimResult, StreamStats};
use samr_trace::{shared_source, AnySnapshotSource, HierarchyTrace, MemorySource};
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// A statically described experiment: everything needed to reproduce one
/// trace → model → partition → simulate run. Serializable, so scenarios
/// can be stored next to their artifacts and re-run from the description
/// alone.
///
/// Serde is hand-written so the `policy` field is omitted when it is
/// the default [`PolicySpec::Static`] (and tolerated when missing):
/// static scenarios' JSON artifacts stay byte-identical to the
/// pre-policy era, and pre-policy artifacts still parse.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Which application kernel produces the trace.
    pub app: AppKind,
    /// Spatial dimension of the scenario's index space (derived from the
    /// application; recorded explicitly so artifacts are self-describing
    /// and mixed-dimension campaigns are visible at a glance).
    pub dim: usize,
    /// Trace-generation configuration (steps, levels, clustering, seed).
    pub trace: TraceGenConfig,
    /// Which partitioner to run.
    pub partitioner: PartitionerSpec,
    /// How the partitioner is driven over time (static, or adaptive
    /// repartitioning that may switch mid-run).
    pub policy: PolicySpec,
    /// Simulation configuration (processor count, ghost width, machine).
    pub sim: SimConfig,
}

impl Serialize for Scenario {
    fn serialize(&self) -> Value {
        let mut entries = vec![
            ("app".to_string(), self.app.serialize()),
            ("dim".to_string(), self.dim.serialize()),
            ("trace".to_string(), self.trace.serialize()),
            ("partitioner".to_string(), self.partitioner.serialize()),
        ];
        if self.policy != PolicySpec::Static {
            entries.push(("policy".to_string(), self.policy.serialize()));
        }
        entries.push(("sim".to_string(), self.sim.serialize()));
        Value::Map(entries)
    }
}

impl Deserialize for Scenario {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            app: serde::field(v, "app")?,
            dim: serde::field(v, "dim")?,
            trace: serde::field(v, "trace")?,
            partitioner: serde::field(v, "partitioner")?,
            policy: match v.get("policy") {
                Some(p) => Deserialize::deserialize(p)
                    .map_err(|e| serde::Error::msg(format!("field `policy`: {e}")))?,
                None => PolicySpec::Static,
            },
            sim: serde::field(v, "sim")?,
        })
    }
}

impl Scenario {
    /// Build a scenario, deriving the dimension from the application.
    pub fn new(
        app: AppKind,
        trace: TraceGenConfig,
        partitioner: PartitionerSpec,
        sim: SimConfig,
    ) -> Self {
        Self {
            app,
            dim: app.dim(),
            trace,
            partitioner,
            policy: PolicySpec::Static,
            sim,
        }
    }

    /// The scenario with its repartitioning policy replaced.
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// The machine tag of the scenario's slug: empty for the default
    /// (`uniform`) machine so historical artifact paths stay stable, the
    /// preset name for every other registry machine, `custom` otherwise.
    pub fn machine_name(&self) -> &'static str {
        self.sim.machine.preset_name().unwrap_or("custom")
    }

    /// Stable slug identifying the scenario inside its campaign, used
    /// for artifact file names: `bl2d_hybrid_p16_g1`. Non-default
    /// machines append `_m<machine>`, 3-D scenarios `_d3`, non-static
    /// policies `_a<preset>` (e.g. `_abalance`); default-machine 2-D
    /// static-policy slugs are unchanged from the 2-D-only era, so
    /// existing artifact paths stay stable.
    pub fn slug(&self) -> String {
        let machine_suffix = if self.sim.machine == samr_sim::MachineModel::default() {
            String::new()
        } else {
            format!("_m{}", self.machine_name())
        };
        let dim_suffix = if self.dim == 3 { "_d3" } else { "" };
        format!(
            "{}_{}_p{}_g{}{}{}{}",
            self.app.name().to_lowercase(),
            self.partitioner.slug(),
            self.sim.nprocs,
            self.sim.ghost_width,
            machine_suffix,
            dim_suffix,
            self.policy.slug_suffix(),
        )
    }

    /// Execute the scenario against the shared trace/model store via the
    /// streaming path: the trace arrives as a snapshot stream (in-memory
    /// when the store's byte budget admits it, straight from the spill
    /// file otherwise), is windowed through the partitioner, and never
    /// needs to be whole in this scenario's memory. A spill-file I/O
    /// failure retries from the in-memory store (identical output)
    /// rather than aborting the campaign.
    pub fn run(&self) -> ScenarioOutcome {
        assert_eq!(
            self.dim,
            self.app.dim(),
            "scenario dim {} does not match {}'s dimension",
            self.dim,
            self.app.name()
        );
        let model = cached_model(self.app, &self.trace);
        let simulate = |source: &mut AnySnapshotSource| match source {
            AnySnapshotSource::D2(s) => {
                self.policy
                    .simulate_source::<2>(&self.partitioner, s, &self.sim)
            }
            AnySnapshotSource::D3(s) => {
                self.policy
                    .simulate_source::<3>(&self.partitioner, s, &self.sim)
            }
        };
        let (sim, stats) = cached_source(self.app, &self.trace)
            .and_then(|mut source| simulate(&mut source))
            .unwrap_or_else(|_| {
                // Disk trouble (full temp dir, reaped spill file) must
                // not kill a multi-scenario sweep: regenerate in memory.
                let mut source = shared_source(cached_trace(self.app, &self.trace));
                simulate(&mut source).expect("in-memory snapshot sources cannot fail")
            });
        outcome_from(self, sim, stats, model)
    }
}

/// Assemble a scenario outcome from its simulation result, streaming
/// statistics and shared model series (the tail shared by the streaming
/// and batch paths).
fn outcome_from(
    scenario: &Scenario,
    sim: SimResult,
    stats: StreamStats,
    model: Arc<Vec<ModelState>>,
) -> ScenarioOutcome {
    // Step 0 has neither a migration measurement nor a β_m (no previous
    // hierarchy); shape statistics compare from step 1 on.
    let beta_c: Vec<f64> = model.iter().skip(1).map(|s| s.beta_c).collect();
    let beta_m: Vec<f64> = model.iter().skip(1).map(|s| s.beta_m).collect();
    let rel_comm: Vec<f64> = sim.steps.iter().skip(1).map(|s| s.rel_comm).collect();
    let rel_mig: Vec<f64> = sim.steps.iter().skip(1).map(|s| s.rel_migration).collect();
    ScenarioOutcome {
        comm_shape: ShapeStats::compare(&beta_c, &rel_comm),
        migration_shape: ShapeStats::compare(&beta_m, &rel_mig),
        scenario: scenario.clone(),
        sim,
        stats,
        model,
    }
}

/// Execute a scenario on an explicit trace and model series (the shared
/// path behind the figure-regeneration bundle) — a [`MemorySource`]
/// over the trace through the same windowed driver as [`Scenario::run`].
///
/// Static partitioners are simulated snapshot-parallel within the
/// window; stateful selectors (whose decisions depend on invocation
/// order) run strictly sequentially. Both paths produce identical
/// metrics for a static partitioner, so the choice is an execution
/// detail, not a semantic one.
pub(crate) fn run_on_trace<const D: usize>(
    scenario: &Scenario,
    trace: &HierarchyTrace<D>,
    model: Arc<Vec<ModelState>>,
) -> ScenarioOutcome {
    let (sim, stats) = scenario
        .policy
        .simulate_source(
            &scenario.partitioner,
            &mut MemorySource::new(trace),
            &scenario.sim,
        )
        .expect("in-memory snapshot sources cannot fail");
    outcome_from(scenario, sim, stats, model)
}

/// The measured outcome of one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The scenario that produced this outcome.
    pub scenario: Scenario,
    /// Per-step simulation metrics under the scenario's partitioner.
    pub sim: SimResult,
    /// Streaming-driver statistics: peak residency plus the policy's
    /// switch events (empty under the static policy).
    pub stats: StreamStats,
    /// Per-step model states over the same trace (shared across the
    /// scenarios of one application).
    pub model: Arc<Vec<ModelState>>,
    /// Shape statistics: β_c vs. measured relative communication.
    pub comm_shape: ShapeStats,
    /// Shape statistics: β_m vs. measured relative migration.
    pub migration_shape: ShapeStats,
}

impl ScenarioOutcome {
    /// Render the per-step series as CSV: model penalties next to the
    /// measured metrics, one row per coarse step.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "step,beta_l,beta_c,beta_m,rel_comm,rel_migration,load_imbalance,comm_cells,migration_cells,step_time,total_points\n",
        );
        for (m, s) in self.model.iter().zip(&self.sim.steps) {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{:.1},{}\n",
                m.step,
                m.beta_l,
                m.beta_c,
                m.beta_m,
                s.rel_comm,
                s.rel_migration,
                s.load_imbalance,
                s.comm_cells,
                s.migration_cells,
                s.step_time,
                s.total_points,
            ));
        }
        out
    }

    /// The serializable summary recorded as the scenario's JSON artifact.
    pub fn summary(&self) -> ScenarioSummary {
        let n = self.sim.steps.len().max(1) as f64;
        ScenarioSummary {
            scenario: self.scenario.clone(),
            partitioner_name: self.sim.partitioner.clone(),
            steps: self.sim.steps.len(),
            total_time: self.sim.total_time,
            mean_imbalance: self.sim.steps.iter().map(|s| s.load_imbalance).sum::<f64>() / n,
            mean_rel_comm: self.sim.steps.iter().map(|s| s.rel_comm).sum::<f64>() / n,
            mean_rel_migration: self.sim.steps.iter().map(|s| s.rel_migration).sum::<f64>() / n,
            mean_partition_cost: self.sim.steps.iter().map(|s| s.partition_cost).sum::<f64>() / n,
            switches: self.stats.switches(),
            switch_migration_cells: self.stats.switch_migration_cells(),
            comm_shape: self.comm_shape,
            migration_shape: self.migration_shape,
        }
    }

    /// One-line human-readable digest (printed by the CLI). Scenarios
    /// under a non-static policy append their switch count.
    pub fn digest(&self) -> String {
        let s = self.summary();
        let switches = if self.scenario.policy.is_static() {
            String::new()
        } else {
            format!(" switches={}", s.switches)
        };
        format!(
            "{:24} total_time={:10.0} imbalance={:.3} rel_comm={:.4} rel_mig={:.4} comm_r={:.3} mig_r={:.3}{}",
            self.scenario.slug(),
            s.total_time,
            s.mean_imbalance,
            s.mean_rel_comm,
            s.mean_rel_migration,
            s.comm_shape.correlation,
            s.migration_shape.correlation,
            switches,
        )
    }
}

/// Aggregate summary of a scenario outcome — the JSON artifact schema.
///
/// Serde is hand-written for the same artifact-stability reason as
/// [`Scenario`]'s: the switch fields are emitted only for non-static
/// policies (a static policy cannot switch, so recording `0` would just
/// churn every historical artifact) and default to zero when absent.
#[derive(Clone, Debug)]
pub struct ScenarioSummary {
    /// The scenario description (reproducible from this alone).
    pub scenario: Scenario,
    /// Full configured partitioner name.
    pub partitioner_name: String,
    /// Number of simulated coarse steps.
    pub steps: usize,
    /// Total estimated execution time (machine-model units).
    pub total_time: f64,
    /// Mean load imbalance over the run.
    pub mean_imbalance: f64,
    /// Mean grid-relative communication.
    pub mean_rel_comm: f64,
    /// Mean grid-relative migration.
    pub mean_rel_migration: f64,
    /// Mean partitioner-invocation cost per coarse step (machine-model
    /// units; the regrid-overhead axis of the Pareto analysis).
    pub mean_partition_cost: f64,
    /// How many times the policy switched partitioners mid-run (always
    /// `0` under the static policy).
    pub switches: usize,
    /// Total migration volume charged on switch steps (cells).
    pub switch_migration_cells: u64,
    /// β_c vs. measured communication shape statistics.
    pub comm_shape: ShapeStats,
    /// β_m vs. measured migration shape statistics.
    pub migration_shape: ShapeStats,
}

impl Serialize for ScenarioSummary {
    fn serialize(&self) -> Value {
        let mut entries = vec![
            ("scenario".to_string(), self.scenario.serialize()),
            (
                "partitioner_name".to_string(),
                self.partitioner_name.serialize(),
            ),
            ("steps".to_string(), self.steps.serialize()),
            ("total_time".to_string(), self.total_time.serialize()),
            (
                "mean_imbalance".to_string(),
                self.mean_imbalance.serialize(),
            ),
            ("mean_rel_comm".to_string(), self.mean_rel_comm.serialize()),
            (
                "mean_rel_migration".to_string(),
                self.mean_rel_migration.serialize(),
            ),
            (
                "mean_partition_cost".to_string(),
                self.mean_partition_cost.serialize(),
            ),
        ];
        if self.scenario.policy != PolicySpec::Static {
            entries.push(("switches".to_string(), self.switches.serialize()));
            entries.push((
                "switch_migration_cells".to_string(),
                self.switch_migration_cells.serialize(),
            ));
        }
        entries.push(("comm_shape".to_string(), self.comm_shape.serialize()));
        entries.push((
            "migration_shape".to_string(),
            self.migration_shape.serialize(),
        ));
        Value::Map(entries)
    }
}

impl Deserialize for ScenarioSummary {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let optional_u64 = |name: &str| -> Result<u64, serde::Error> {
            match v.get(name) {
                Some(f) => Deserialize::deserialize(f)
                    .map_err(|e| serde::Error::msg(format!("field `{name}`: {e}"))),
                None => Ok(0),
            }
        };
        Ok(Self {
            scenario: serde::field(v, "scenario")?,
            partitioner_name: serde::field(v, "partitioner_name")?,
            steps: serde::field(v, "steps")?,
            total_time: serde::field(v, "total_time")?,
            mean_imbalance: serde::field(v, "mean_imbalance")?,
            mean_rel_comm: serde::field(v, "mean_rel_comm")?,
            mean_rel_migration: serde::field(v, "mean_rel_migration")?,
            mean_partition_cost: serde::field(v, "mean_partition_cost")?,
            switches: optional_u64("switches")? as usize,
            switch_migration_cells: optional_u64("switch_migration_cells")?,
            comm_shape: serde::field(v, "comm_shape")?,
            migration_shape: serde::field(v, "migration_shape")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::new(
            AppKind::Bl2d,
            TraceGenConfig::smoke(),
            PartitionerSpec::parse("hybrid").unwrap(),
            SimConfig {
                nprocs: 4,
                ..SimConfig::default()
            },
        )
    }

    fn scenario_3d() -> Scenario {
        Scenario::new(
            AppKind::Sp3d,
            TraceGenConfig {
                base_cells: 16,
                steps: 6,
                ..TraceGenConfig::smoke()
            },
            PartitionerSpec::parse("hybrid").unwrap(),
            SimConfig {
                nprocs: 4,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let s = scenario();
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn slug_is_stable_and_file_safe() {
        assert_eq!(scenario().slug(), "bl2d_hybrid_p4_g1");
        assert_eq!(scenario_3d().slug(), "sp3d_hybrid_p4_g1_d3");
    }

    #[test]
    fn non_default_machines_tag_the_slug() {
        use samr_sim::MachineModel;
        let mut s = scenario();
        assert_eq!(s.machine_name(), "uniform");
        s.sim.machine = MachineModel::slow_network();
        assert_eq!(s.machine_name(), "slow-net");
        assert_eq!(s.slug(), "bl2d_hybrid_p4_g1_mslow-net");
        s.sim.machine = MachineModel {
            cell_update: 42.0,
            ..MachineModel::default()
        };
        assert_eq!(s.slug(), "bl2d_hybrid_p4_g1_mcustom");
        let mut s3 = scenario_3d();
        s3.sim.machine = MachineModel::fast_network();
        assert_eq!(s3.slug(), "sp3d_hybrid_p4_g1_mfast-net_d3");
    }

    #[test]
    fn preset_partitioners_slug_file_safely_inside_scenarios() {
        let mut s = scenario();
        s.partitioner = PartitionerSpec::parse("domain-sfc:morton").unwrap();
        assert_eq!(s.slug(), "bl2d_domain-sfc-morton_p4_g1");
    }

    #[test]
    fn outcome_rows_match_trace_length() {
        let out = scenario().run();
        assert_eq!(out.sim.steps.len(), out.model.len());
        // Header plus one row per step.
        assert_eq!(out.to_csv().lines().count(), out.model.len() + 1);
    }

    #[test]
    fn three_d_scenario_runs_end_to_end() {
        let out = scenario_3d().run();
        assert_eq!(out.scenario.dim, 3);
        assert!(out.sim.total_time > 0.0);
        assert_eq!(out.sim.steps.len(), out.model.len());
        assert_eq!(out.to_csv().lines().count(), out.model.len() + 1);
        // Metrics stay in their defined ranges in 3-D too.
        for s in &out.sim.steps {
            assert!(s.load_imbalance >= 1.0 - 1e-12);
            assert!(s.rel_comm >= 0.0);
            assert!(s.rel_migration >= 0.0);
        }
    }

    #[test]
    fn stateful_and_static_specs_both_run() {
        let mut meta = scenario();
        meta.partitioner = PartitionerSpec::Meta;
        let out = meta.run();
        assert!(out.sim.total_time > 0.0);
        assert_eq!(out.sim.nprocs, 4);
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let out = scenario().run();
        let json = serde_json::to_string_pretty(&out.summary()).unwrap();
        let back: ScenarioSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.scenario, out.scenario);
        assert_eq!(back.steps, out.sim.steps.len());
    }
}
