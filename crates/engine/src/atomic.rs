//! Atomic file writes: the tmp-then-rename discipline every campaign
//! artifact goes through.
//!
//! A campaign killed mid-write (OOM, full disk, `kill -9`) must never
//! leave a torn artifact for the merger or a resumed run to misread.
//! [`atomic_write`] writes the content to a uniquely named temporary
//! sibling and renames it into place, so any artifact that *exists*
//! under its final name is whole: a crash leaves at worst a stray
//! dot-prefixed `.tmp-*` file that every reader ignores (tmp names are
//! unique per process and call, so nothing ever reads or reuses one;
//! a kill in the write–rename window orphans that file until the
//! directory is cleaned up — the cost of never risking a sweep that
//! could delete a live sibling worker's pending write). The
//! same discipline already protected the trace spill store
//! ([`crate::store`]); this module makes it the one way campaign bytes
//! reach disk.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The temporary sibling a pending write goes to: unique per process
/// and per call, in the same directory as the target so the rename
/// never crosses a filesystem boundary.
fn tmp_sibling(path: &Path) -> PathBuf {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".into());
    path.with_file_name(format!(
        ".{name}.tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Write `bytes` to `path` atomically: the content lands in a unique
/// temporary sibling first and is renamed into place whole, so a crash
/// at any instant leaves either the previous file, no file, or the
/// complete new file — never a torn one. Concurrent writers of
/// deterministic content race benignly: whichever rename lands last is
/// byte-identical.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        // Clean up whatever made it to disk: a partial tmp file left by
        // ENOSPC would otherwise keep occupying the space a retried run
        // needs (tmp names are unique, so nothing ever overwrites it).
        std::fs::remove_file(&tmp).ok();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("samr-atomic-test-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_content_and_leaves_no_temporaries() {
        let dir = temp_dir("clean");
        let path = dir.join("a.csv");
        atomic_write(&path, b"hello").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a.csv".to_string()], "stray files: {names:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrites_existing_files_whole() {
        let dir = temp_dir("overwrite");
        let path = dir.join("b.json");
        atomic_write(&path, b"old").unwrap();
        atomic_write(&path, b"replacement").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"replacement");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_parent_directory_is_an_error_not_a_panic() {
        let dir = temp_dir("noparent");
        let path = dir.join("nope").join("c.csv");
        assert!(atomic_write(&path, b"x").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
