//! Campaign executors: the *where and how it runs* half of campaign
//! execution.
//!
//! A [`CampaignExecutor`] consumes a [`CampaignPlan`] and produces
//! either in-memory outcomes or on-disk shard artifact directories:
//!
//! - [`RayonExecutor`] — the in-process default: every scenario of the
//!   plan, rayon-parallel over a warmed trace/model store, outcomes in
//!   plan order (byte-identical to the pre-refactor monolithic loop);
//! - [`ShardExecutor`] — runs exactly one shard of the plan and writes
//!   a self-describing artifact directory (`shard-<i>-of-<n>/` with
//!   per-scenario CSV/JSON plus a [`ShardManifest`]) that
//!   [`crate::merge`] can validate and reassemble;
//! - [`WorkerExecutor`] — multi-process: spawns one `samr campaign
//!   --shard i/n` child per shard and waits, so a single host (or a
//!   launcher script across hosts) runs the shards as independent
//!   processes, each with its own bounded-memory trace store.
//!
//! All three are crash-consistent and resumable: every artifact goes
//! through [`crate::atomic::atomic_write`] (tmp-then-rename, never a
//! torn file), every finished scenario is stamped with a
//! [`CompletionRecord`], and with `resume` set an executor re-validates
//! existing records against the current plan and re-executes only the
//! scenarios that are not provably done. The worker executor
//! additionally relaunches a dead child (nonzero exit, signal, spawn
//! failure) with `--resume` up to [`WorkerExecutor::retries`] times, so
//! one killed worker costs one shard remainder, not the whole sweep.

use crate::atomic::atomic_write;
use crate::merge::{ManifestEntry, ShardManifest};
use crate::plan::{CampaignPlan, PlannedScenario};
use crate::resume::CompletionRecord;
use crate::scenario::ScenarioOutcome;
use crate::store::cached_model;
use rayon::prelude::*;
use samr_apps::AppKind;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Instant;

/// What an executor produced.
#[derive(Debug)]
pub enum ExecOutput {
    /// Outcomes held in memory, in plan order (in-process execution).
    Outcomes(Vec<ScenarioOutcome>),
    /// Shard artifact directories on disk, each holding per-scenario
    /// CSV/JSON artifacts and a `shard.manifest.json`.
    Shards(Vec<PathBuf>),
}

/// Execution failure: I/O trouble writing artifacts, or a worker
/// process that could not be spawned or exited unsuccessfully.
#[derive(Debug)]
pub enum ExecError {
    /// Artifact or manifest I/O failed.
    Io(std::io::Error),
    /// A shard worker process failed (after exhausting its retries).
    Worker {
        /// Which shard the worker was running.
        shard: usize,
        /// What went wrong (spawn error or exit status).
        detail: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "artifact I/O failed: {e}"),
            Self::Worker { shard, detail } => {
                write!(f, "shard {shard} worker failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<std::io::Error> for ExecError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A strategy for executing a campaign plan. `dir` is the campaign
/// artifact directory; in-process executors that keep outcomes in
/// memory ignore it.
pub trait CampaignExecutor {
    /// Execute (all or one shard of) `plan`, writing any artifacts
    /// under `dir`.
    fn execute(&self, plan: &CampaignPlan, dir: &Path) -> Result<ExecOutput, ExecError>;
}

/// Warm the process-wide store: one trace + model per distinct
/// application, generated in parallel, so the scenario sweep itself is
/// pure partition-and-simulate work.
fn warm_store(scenarios: &[&PlannedScenario]) {
    let mut apps: Vec<(AppKind, &PlannedScenario)> = Vec::new();
    for p in scenarios {
        if !apps.iter().any(|(a, _)| *a == p.scenario.app) {
            apps.push((p.scenario.app, p));
        }
    }
    apps.par_iter().for_each(|(app, p)| {
        cached_model(*app, &p.scenario.trace);
    });
}

/// Run a slice of planned scenarios rayon-parallel, outcomes in input
/// order.
pub(crate) fn run_scenarios(scenarios: &[&PlannedScenario]) -> Vec<ScenarioOutcome> {
    warm_store(scenarios);
    scenarios.par_iter().map(|p| p.scenario.run()).collect()
}

/// Run a slice of planned scenarios rayon-parallel, writing and
/// stamping each scenario's artifacts *the moment it finishes* —
/// checkpointing is per scenario, not per batch, so a process killed
/// mid-sweep has durably banked every scenario that completed before
/// the kill and `--resume` re-executes only the true remainder.
/// Returns `(planned, outcome, rendered CSV)` triples in input order.
fn run_and_stamp<'a>(
    dir: &Path,
    plan_hash: &str,
    scenarios: &[&'a PlannedScenario],
) -> std::io::Result<Vec<(&'a PlannedScenario, ScenarioOutcome, String)>> {
    warm_store(scenarios);
    let results: Vec<std::io::Result<(&PlannedScenario, ScenarioOutcome, String)>> = scenarios
        .par_iter()
        .map(|p| {
            let outcome = p.scenario.run();
            let csv = outcome.to_csv();
            write_scenario_artifacts(dir, p, plan_hash, &csv, &outcome)?;
            Ok((*p, outcome, csv))
        })
        .collect();
    results.into_iter().collect()
}

/// Split a shard's (or campaign's) scenario slice for resumption:
/// scenarios whose completion record in `dir` validates against the
/// current plan hash are already done; everything else — no record, no
/// artifact, stale plan, torn bytes — must (re-)run. With `resume`
/// off, everything runs.
pub(crate) fn split_resume<'a>(
    dir: &Path,
    plan_hash: &str,
    scenarios: &[&'a PlannedScenario],
    resume: bool,
) -> (Vec<&'a PlannedScenario>, Vec<&'a PlannedScenario>) {
    if !resume {
        return (Vec::new(), scenarios.to_vec());
    }
    scenarios
        .iter()
        .partition(|p| CompletionRecord::status(dir, p.id, &p.slug, plan_hash).is_complete())
}

/// Write one scenario's CSV (pre-rendered, so callers assembling the
/// campaign CSV render it once) and JSON artifacts under `dir`, named
/// by the planned slug, then stamp the pair with a completion record.
/// Every write is atomic (tmp-then-rename) and the record lands last,
/// so a crash at any instant leaves either no trace of the scenario,
/// whole-but-unstamped artifacts (re-run on resume), or a provably
/// complete pair. Returns the CSV, JSON and record paths.
pub(crate) fn write_scenario_artifacts(
    dir: &Path,
    planned: &PlannedScenario,
    plan_hash: &str,
    csv: &str,
    outcome: &ScenarioOutcome,
) -> std::io::Result<(PathBuf, PathBuf, PathBuf)> {
    let csv_path = dir.join(format!("{}.csv", planned.slug));
    atomic_write(&csv_path, csv.as_bytes())?;
    let json_path = dir.join(format!("{}.json", planned.slug));
    let json = serde_json::to_string_pretty(&outcome.summary()).expect("summary serializes");
    atomic_write(&json_path, json.as_bytes())?;
    let record_path = CompletionRecord::stamp(
        dir,
        planned.id,
        &planned.slug,
        plan_hash,
        csv.as_bytes(),
        json.as_bytes(),
    )?;
    Ok((csv_path, json_path, record_path))
}

/// Build a scoped rayon pool of `threads` workers (`0` = automatic)
/// for campaign execution — the engine behind the CLI's `--threads`,
/// so shard workers sharing one host cap their parallelism instead of
/// each assuming the whole machine.
pub fn build_thread_pool(threads: usize) -> Result<rayon::ThreadPool, String> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| format!("build {threads}-thread pool: {e}"))
}

/// The in-process executor: the whole plan, rayon-parallel, outcomes in
/// plan order. This is `Campaign::run`'s engine and preserves the
/// pre-refactor behavior byte for byte. With [`RayonExecutor::resume`]
/// set, the artifact-writing front end (`Campaign::run_to_dir`) skips
/// scenarios whose completion records validate in the campaign
/// directory.
#[derive(Clone, Copy, Debug, Default)]
pub struct RayonExecutor {
    /// Skip scenarios already stamped complete (valid
    /// [`CompletionRecord`]) in the artifact directory.
    pub resume: bool,
}

impl RayonExecutor {
    /// Execute every scenario of the plan, returning outcomes in plan
    /// order (ignores [`RayonExecutor::resume`]: with no artifact
    /// directory there is nothing to resume from).
    pub fn run_plan(&self, plan: &CampaignPlan) -> Vec<ScenarioOutcome> {
        let scenarios: Vec<&PlannedScenario> = plan.scenarios.iter().collect();
        run_scenarios(&scenarios)
    }

    /// Execute the scenarios of the plan not already complete in `dir`
    /// (all of them unless [`RayonExecutor::resume`] is set), writing
    /// and stamping each scenario's artifacts under `dir` as it
    /// finishes. Returns the executed `(planned, outcome, csv)` triples
    /// in plan order plus how many scenarios were skipped as complete.
    #[allow(clippy::type_complexity)]
    pub(crate) fn run_remaining<'a>(
        &self,
        plan: &'a CampaignPlan,
        dir: &Path,
    ) -> std::io::Result<(Vec<(&'a PlannedScenario, ScenarioOutcome, String)>, usize)> {
        let scenarios: Vec<&PlannedScenario> = plan.scenarios.iter().collect();
        let (done, todo) = split_resume(dir, &plan.plan_hash, &scenarios, self.resume);
        let executed = run_and_stamp(dir, &plan.plan_hash, &todo)?;
        Ok((executed, done.len()))
    }
}

impl CampaignExecutor for RayonExecutor {
    fn execute(&self, plan: &CampaignPlan, _dir: &Path) -> Result<ExecOutput, ExecError> {
        Ok(ExecOutput::Outcomes(self.run_plan(plan)))
    }
}

/// The directory name of one shard's artifacts under the campaign
/// directory: `shard-<i>-of-<n>`.
pub fn shard_dir_name(shard: usize, nshards: usize) -> String {
    format!("shard-{shard}-of-{nshards}")
}

/// What one shard execution did: the outcomes of the scenarios it
/// actually executed this run, how many it skipped as already complete
/// (always `0` without resume), and the shard artifact directory.
#[derive(Debug)]
pub struct ShardRun {
    /// Outcomes of the scenarios executed in this invocation, in the
    /// shard's plan order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Scenarios skipped because their completion records validated
    /// against the current plan.
    pub skipped: usize,
    /// The shard artifact directory (`dir/shard-<i>-of-<n>`).
    pub dir: PathBuf,
}

/// Runs exactly one shard of a plan and writes its self-describing
/// artifact directory. The executor of `samr campaign --shard i/n`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardExecutor {
    /// Which shard of the plan to run (`0..plan.nshards`).
    pub shard: usize,
    /// Skip scenarios already stamped complete in the shard directory
    /// (the `--resume` flag): a crashed or killed shard re-executes
    /// only its remainder.
    pub resume: bool,
}

impl ShardExecutor {
    /// Execute this executor's shard of the plan, writing per-scenario
    /// artifacts, completion records and the shard manifest under
    /// `dir/shard-<i>-of-<n>/` (the manifest last — its presence means
    /// the shard finished). Returns the [`ShardRun`] with the outcomes
    /// of the scenarios executed this invocation.
    pub fn run_shard(&self, plan: &CampaignPlan, dir: &Path) -> Result<ShardRun, ExecError> {
        assert!(
            self.shard < plan.nshards,
            "shard {} out of range for a {}-shard plan",
            self.shard,
            plan.nshards
        );
        let start = Instant::now();
        let scenarios = plan.shard_scenarios(self.shard);
        let shard_dir = dir.join(shard_dir_name(self.shard, plan.nshards));
        std::fs::create_dir_all(&shard_dir)?;
        let (done, todo) = split_resume(&shard_dir, &plan.plan_hash, &scenarios, self.resume);
        let outcomes: Vec<ScenarioOutcome> = run_and_stamp(&shard_dir, &plan.plan_hash, &todo)?
            .into_iter()
            .map(|(_, outcome, _)| outcome)
            .collect();
        let manifest = ShardManifest {
            plan_hash: plan.plan_hash.clone(),
            shard: self.shard,
            nshards: plan.nshards,
            total_scenarios: plan.len(),
            strategy: plan.strategy,
            elapsed_seconds: start.elapsed().as_secs_f64(),
            spec: plan.spec.clone(),
            scenarios: scenarios
                .iter()
                .map(|p| ManifestEntry {
                    id: p.id,
                    slug: p.slug.clone(),
                })
                .collect(),
        };
        manifest.write(&shard_dir)?;
        Ok(ShardRun {
            outcomes,
            skipped: done.len(),
            dir: shard_dir,
        })
    }
}

impl CampaignExecutor for ShardExecutor {
    fn execute(&self, plan: &CampaignPlan, dir: &Path) -> Result<ExecOutput, ExecError> {
        let run = self.run_shard(plan, dir)?;
        Ok(ExecOutput::Shards(vec![run.dir]))
    }
}

/// The file the worker executor writes the campaign spec to, and that
/// `samr campaign --spec` reads back, so every worker plans the exact
/// same campaign.
pub const SPEC_FILE: &str = "campaign.spec.json";

/// Multi-process executor: spawns one `<bin> campaign --spec …
/// --shard i/n` child per shard of the plan and waits for all of them.
/// Each child is an independent process with its own trace store and
/// rayon pool, so `--threads` caps per-worker parallelism instead of
/// oversubscribing the host. A child that dies — nonzero exit, killed
/// by a signal, or a failed spawn — is relaunched with `--resume` up to
/// [`WorkerExecutor::retries`] times; relaunches skip the scenarios the
/// dead worker already stamped complete.
#[derive(Clone, Debug)]
pub struct WorkerExecutor {
    /// The `samr` binary to spawn (defaults to the current executable
    /// via [`WorkerExecutor::current_exe`]).
    pub bin: PathBuf,
    /// Rayon thread cap passed to each worker (`--threads`); `None`
    /// lets every worker size its own pool.
    pub threads: Option<usize>,
    /// How many times a dead worker is relaunched (with `--resume`)
    /// before the campaign fails. `0` = the pre-retry behavior: any
    /// worker death fails the sweep.
    pub retries: usize,
    /// Pass `--resume` to every worker's *first* launch too, so a
    /// re-run of a previously killed `--workers` campaign picks up
    /// where the shards left off.
    pub resume: bool,
}

impl WorkerExecutor {
    /// A worker executor spawning the currently running binary — the
    /// right choice when the caller *is* the `samr` CLI. No retries,
    /// no resume; set the fields for crash tolerance.
    pub fn current_exe(threads: Option<usize>) -> std::io::Result<Self> {
        Ok(Self {
            bin: std::env::current_exe()?,
            threads,
            retries: 0,
            resume: false,
        })
    }

    /// Spawn one worker for `shard`. `resume` is forced on for
    /// relaunches regardless of [`WorkerExecutor::resume`].
    fn spawn_worker(
        &self,
        spec_path: &Path,
        plan: &CampaignPlan,
        shard: usize,
        dir: &Path,
        resume: bool,
    ) -> std::io::Result<Child> {
        let mut cmd = Command::new(&self.bin);
        cmd.arg("campaign")
            .arg("--spec")
            .arg(spec_path)
            .arg("--shard")
            .arg(format!("{shard}/{}", plan.nshards))
            .arg("--shard-strategy")
            .arg(plan.strategy.name())
            .arg("--out")
            .arg(dir)
            // Workers' per-scenario digests would interleave across
            // processes; the merged campaign reports instead.
            .stdout(Stdio::null());
        if resume {
            cmd.arg("--resume");
        }
        if let Some(t) = self.threads {
            cmd.arg("--threads").arg(t.to_string());
        }
        cmd.spawn()
    }

    /// Spawn one worker per shard of the plan, writing all shard
    /// directories under `dir`; returns the shard directories in shard
    /// order once every worker has exited successfully, relaunching
    /// dead workers with `--resume` up to [`WorkerExecutor::retries`]
    /// times each.
    pub fn run_workers(&self, plan: &CampaignPlan, dir: &Path) -> Result<Vec<PathBuf>, ExecError> {
        std::fs::create_dir_all(dir)?;
        let spec_path = dir.join(SPEC_FILE);
        let spec_json = serde_json::to_string_pretty(&plan.spec).expect("CampaignSpec serializes");
        atomic_write(&spec_path, spec_json.as_bytes())?;
        // Launch the fleet. A spawn failure consumes retry attempts like
        // any other worker death; exhausting them kills and reaps the
        // workers already started — a half-spawned fleet must not keep
        // writing shard artifacts after the campaign has reported
        // failure.
        let mut active: Vec<(usize, usize, Child)> = Vec::with_capacity(plan.nshards);
        for shard in 0..plan.nshards {
            let mut attempt = 0usize;
            let child = loop {
                // First launches honor self.resume; retry launches always
                // resume (safe on an empty shard dir: nothing to skip).
                let resume = self.resume || attempt > 0;
                match self.spawn_worker(&spec_path, plan, shard, dir, resume) {
                    Ok(child) => break Ok(child),
                    Err(e) if attempt < self.retries => {
                        attempt += 1;
                        eprintln!(
                            "shard {shard} worker failed to spawn ({e}); \
                             retrying ({attempt}/{})",
                            self.retries
                        );
                    }
                    Err(e) => break Err(e),
                }
            };
            match child {
                Ok(child) => active.push((shard, attempt, child)),
                Err(e) => {
                    for (_, _, mut c) in active {
                        c.kill().ok();
                        c.wait().ok();
                    }
                    return Err(ExecError::Worker {
                        shard,
                        detail: format!("spawn {}: {e}", self.bin.display()),
                    });
                }
            }
        }
        // Supervise the fleet with non-blocking polls: a dead worker is
        // detected and relaunched with --resume *while the other shards
        // keep running* (a blocking in-order wait would postpone the
        // relaunch until every later-spawned shard finished, serializing
        // the recovery behind the whole sweep), so it has attempts left
        // to re-execute only the scenarios it had not stamped complete.
        let mut failure: Option<ExecError> = None;
        while !active.is_empty() {
            let mut reaped = false;
            let mut i = 0;
            while i < active.len() {
                let exited = match active[i].2.try_wait() {
                    Ok(None) => {
                        i += 1;
                        continue;
                    }
                    Ok(Some(status)) if status.success() => None,
                    Ok(Some(status)) => Some(format!("exited with {status}")),
                    Err(e) => {
                        // The child may still be alive after a failed
                        // poll: kill and reap it before any relaunch, or
                        // two workers would race on the same shard.
                        active[i].2.kill().ok();
                        active[i].2.wait().ok();
                        Some(format!("wait failed: {e}"))
                    }
                };
                let (shard, attempt, _) = active.swap_remove(i);
                reaped = true;
                let Some(detail) = exited else { continue };
                if attempt < self.retries && failure.is_none() {
                    let attempt = attempt + 1;
                    eprintln!(
                        "shard {shard} worker died ({detail}); relaunching with --resume \
                         ({attempt}/{})",
                        self.retries
                    );
                    match self.spawn_worker(&spec_path, plan, shard, dir, true) {
                        Ok(next) => active.push((shard, attempt, next)),
                        Err(e) => {
                            failure = Some(ExecError::Worker {
                                shard,
                                detail: format!("relaunch spawn {}: {e}", self.bin.display()),
                            });
                        }
                    }
                } else if failure.is_none() {
                    failure = Some(ExecError::Worker { shard, detail });
                }
            }
            if !reaped && !active.is_empty() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok((0..plan.nshards)
                .map(|shard| dir.join(shard_dir_name(shard, plan.nshards)))
                .collect()),
        }
    }
}

impl CampaignExecutor for WorkerExecutor {
    fn execute(&self, plan: &CampaignPlan, dir: &Path) -> Result<ExecOutput, ExecError> {
        Ok(ExecOutput::Shards(self.run_workers(plan, dir)?))
    }
}
