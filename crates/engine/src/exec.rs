//! Campaign executors: the *where and how it runs* half of campaign
//! execution.
//!
//! A [`CampaignExecutor`] consumes a [`CampaignPlan`] and produces
//! either in-memory outcomes or on-disk shard artifact directories:
//!
//! - [`RayonExecutor`] — the in-process default: every scenario of the
//!   plan, rayon-parallel over a warmed trace/model store, outcomes in
//!   plan order (byte-identical to the pre-refactor monolithic loop);
//! - [`ShardExecutor`] — runs exactly one shard of the plan and writes
//!   a self-describing artifact directory (`shard-<i>-of-<n>/` with
//!   per-scenario CSV/JSON plus a [`ShardManifest`]) that
//!   [`crate::merge`] can validate and reassemble;
//! - [`WorkerExecutor`] — multi-process: spawns one `samr campaign
//!   --shard i/n` child per shard and waits, so a single host (or a
//!   launcher script across hosts) runs the shards as independent
//!   processes, each with its own bounded-memory trace store.

use crate::merge::{ManifestEntry, ShardManifest};
use crate::plan::{CampaignPlan, PlannedScenario};
use crate::scenario::ScenarioOutcome;
use crate::store::cached_model;
use rayon::prelude::*;
use samr_apps::AppKind;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

/// What an executor produced.
#[derive(Debug)]
pub enum ExecOutput {
    /// Outcomes held in memory, in plan order (in-process execution).
    Outcomes(Vec<ScenarioOutcome>),
    /// Shard artifact directories on disk, each holding per-scenario
    /// CSV/JSON artifacts and a `shard.manifest.json`.
    Shards(Vec<PathBuf>),
}

/// Execution failure: I/O trouble writing artifacts, or a worker
/// process that could not be spawned or exited unsuccessfully.
#[derive(Debug)]
pub enum ExecError {
    /// Artifact or manifest I/O failed.
    Io(std::io::Error),
    /// A shard worker process failed.
    Worker {
        /// Which shard the worker was running.
        shard: usize,
        /// What went wrong (spawn error or exit status).
        detail: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "artifact I/O failed: {e}"),
            Self::Worker { shard, detail } => {
                write!(f, "shard {shard} worker failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<std::io::Error> for ExecError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A strategy for executing a campaign plan. `dir` is the campaign
/// artifact directory; in-process executors that keep outcomes in
/// memory ignore it.
pub trait CampaignExecutor {
    /// Execute (all or one shard of) `plan`, writing any artifacts
    /// under `dir`.
    fn execute(&self, plan: &CampaignPlan, dir: &Path) -> Result<ExecOutput, ExecError>;
}

/// Warm the process-wide store: one trace + model per distinct
/// application, generated in parallel, so the scenario sweep itself is
/// pure partition-and-simulate work.
fn warm_store(scenarios: &[&PlannedScenario]) {
    let mut apps: Vec<(AppKind, &PlannedScenario)> = Vec::new();
    for p in scenarios {
        if !apps.iter().any(|(a, _)| *a == p.scenario.app) {
            apps.push((p.scenario.app, p));
        }
    }
    apps.par_iter().for_each(|(app, p)| {
        cached_model(*app, &p.scenario.trace);
    });
}

/// Run a slice of planned scenarios rayon-parallel, outcomes in input
/// order.
fn run_scenarios(scenarios: &[&PlannedScenario]) -> Vec<ScenarioOutcome> {
    warm_store(scenarios);
    scenarios.par_iter().map(|p| p.scenario.run()).collect()
}

/// Write one scenario's CSV (pre-rendered, so callers assembling the
/// campaign CSV render it once) and JSON artifacts under `dir`, named
/// by the planned slug; returns the two paths.
pub(crate) fn write_scenario_artifacts(
    dir: &Path,
    slug: &str,
    csv: &str,
    outcome: &ScenarioOutcome,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let csv_path = dir.join(format!("{slug}.csv"));
    std::fs::write(&csv_path, csv)?;
    let json_path = dir.join(format!("{slug}.json"));
    let json = serde_json::to_string_pretty(&outcome.summary()).expect("summary serializes");
    std::fs::write(&json_path, json)?;
    Ok((csv_path, json_path))
}

/// Build a scoped rayon pool of `threads` workers (`0` = automatic)
/// for campaign execution — the engine behind the CLI's `--threads`,
/// so shard workers sharing one host cap their parallelism instead of
/// each assuming the whole machine.
pub fn build_thread_pool(threads: usize) -> Result<rayon::ThreadPool, String> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| format!("build {threads}-thread pool: {e}"))
}

/// The in-process executor: the whole plan, rayon-parallel, outcomes in
/// plan order. This is `Campaign::run`'s engine and preserves the
/// pre-refactor behavior byte for byte.
#[derive(Clone, Copy, Debug, Default)]
pub struct RayonExecutor;

impl RayonExecutor {
    /// Execute every scenario of the plan, returning outcomes in plan
    /// order.
    pub fn run_plan(&self, plan: &CampaignPlan) -> Vec<ScenarioOutcome> {
        let scenarios: Vec<&PlannedScenario> = plan.scenarios.iter().collect();
        run_scenarios(&scenarios)
    }
}

impl CampaignExecutor for RayonExecutor {
    fn execute(&self, plan: &CampaignPlan, _dir: &Path) -> Result<ExecOutput, ExecError> {
        Ok(ExecOutput::Outcomes(self.run_plan(plan)))
    }
}

/// The directory name of one shard's artifacts under the campaign
/// directory: `shard-<i>-of-<n>`.
pub fn shard_dir_name(shard: usize, nshards: usize) -> String {
    format!("shard-{shard}-of-{nshards}")
}

/// Runs exactly one shard of a plan and writes its self-describing
/// artifact directory. The executor of `samr campaign --shard i/n`.
#[derive(Clone, Copy, Debug)]
pub struct ShardExecutor {
    /// Which shard of the plan to run (`0..plan.nshards`).
    pub shard: usize,
}

impl ShardExecutor {
    /// Execute this executor's shard of the plan, writing per-scenario
    /// artifacts and the shard manifest under
    /// `dir/shard-<i>-of-<n>/`. Returns the outcomes (in the shard's
    /// plan order, matching [`CampaignPlan::shard_scenarios`]) and the
    /// shard directory.
    pub fn run_shard(
        &self,
        plan: &CampaignPlan,
        dir: &Path,
    ) -> Result<(Vec<ScenarioOutcome>, PathBuf), ExecError> {
        assert!(
            self.shard < plan.nshards,
            "shard {} out of range for a {}-shard plan",
            self.shard,
            plan.nshards
        );
        let start = Instant::now();
        let scenarios = plan.shard_scenarios(self.shard);
        let outcomes = run_scenarios(&scenarios);
        let shard_dir = dir.join(shard_dir_name(self.shard, plan.nshards));
        std::fs::create_dir_all(&shard_dir)?;
        for (p, outcome) in scenarios.iter().zip(&outcomes) {
            write_scenario_artifacts(&shard_dir, &p.slug, &outcome.to_csv(), outcome)?;
        }
        let manifest = ShardManifest {
            plan_hash: plan.plan_hash.clone(),
            shard: self.shard,
            nshards: plan.nshards,
            total_scenarios: plan.len(),
            strategy: plan.strategy,
            elapsed_seconds: start.elapsed().as_secs_f64(),
            spec: plan.spec.clone(),
            scenarios: scenarios
                .iter()
                .map(|p| ManifestEntry {
                    id: p.id,
                    slug: p.slug.clone(),
                })
                .collect(),
        };
        manifest.write(&shard_dir)?;
        Ok((outcomes, shard_dir))
    }
}

impl CampaignExecutor for ShardExecutor {
    fn execute(&self, plan: &CampaignPlan, dir: &Path) -> Result<ExecOutput, ExecError> {
        let (_, shard_dir) = self.run_shard(plan, dir)?;
        Ok(ExecOutput::Shards(vec![shard_dir]))
    }
}

/// The file the worker executor writes the campaign spec to, and that
/// `samr campaign --spec` reads back, so every worker plans the exact
/// same campaign.
pub const SPEC_FILE: &str = "campaign.spec.json";

/// Multi-process executor: spawns one `<bin> campaign --spec …
/// --shard i/n` child per shard of the plan and waits for all of them.
/// Each child is an independent process with its own trace store and
/// rayon pool, so `--threads` caps per-worker parallelism instead of
/// oversubscribing the host.
#[derive(Clone, Debug)]
pub struct WorkerExecutor {
    /// The `samr` binary to spawn (defaults to the current executable
    /// via [`WorkerExecutor::current_exe`]).
    pub bin: PathBuf,
    /// Rayon thread cap passed to each worker (`--threads`); `None`
    /// lets every worker size its own pool.
    pub threads: Option<usize>,
}

impl WorkerExecutor {
    /// A worker executor spawning the currently running binary — the
    /// right choice when the caller *is* the `samr` CLI.
    pub fn current_exe(threads: Option<usize>) -> std::io::Result<Self> {
        Ok(Self {
            bin: std::env::current_exe()?,
            threads,
        })
    }

    /// Spawn one worker per shard of the plan, writing all shard
    /// directories under `dir`; returns the shard directories in shard
    /// order once every worker has exited successfully.
    pub fn run_workers(&self, plan: &CampaignPlan, dir: &Path) -> Result<Vec<PathBuf>, ExecError> {
        std::fs::create_dir_all(dir)?;
        let spec_path = dir.join(SPEC_FILE);
        let spec_json = serde_json::to_string_pretty(&plan.spec).expect("CampaignSpec serializes");
        std::fs::write(&spec_path, spec_json)?;
        let mut children = Vec::with_capacity(plan.nshards);
        for shard in 0..plan.nshards {
            let mut cmd = Command::new(&self.bin);
            cmd.arg("campaign")
                .arg("--spec")
                .arg(&spec_path)
                .arg("--shard")
                .arg(format!("{shard}/{}", plan.nshards))
                .arg("--shard-strategy")
                .arg(plan.strategy.name())
                .arg("--out")
                .arg(dir)
                // Workers' per-scenario digests would interleave across
                // processes; the merged campaign reports instead.
                .stdout(Stdio::null());
            if let Some(t) = self.threads {
                cmd.arg("--threads").arg(t.to_string());
            }
            match cmd.spawn() {
                Ok(child) => children.push((shard, child)),
                Err(e) => {
                    // Kill and reap the workers already started: a
                    // half-spawned fleet must not keep writing shard
                    // artifacts after the campaign has reported failure.
                    for (_, mut c) in children {
                        c.kill().ok();
                        c.wait().ok();
                    }
                    return Err(ExecError::Worker {
                        shard,
                        detail: format!("spawn {}: {e}", self.bin.display()),
                    });
                }
            }
        }
        let mut dirs = Vec::with_capacity(plan.nshards);
        let mut failure = None;
        for (shard, mut child) in children {
            match child.wait() {
                Ok(status) if status.success() => {
                    dirs.push(dir.join(shard_dir_name(shard, plan.nshards)));
                }
                Ok(status) => {
                    failure.get_or_insert(ExecError::Worker {
                        shard,
                        detail: format!("exited with {status}"),
                    });
                }
                Err(e) => {
                    failure.get_or_insert(ExecError::Worker {
                        shard,
                        detail: format!("wait failed: {e}"),
                    });
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(dirs),
        }
    }
}

impl CampaignExecutor for WorkerExecutor {
    fn execute(&self, plan: &CampaignPlan, dir: &Path) -> Result<ExecOutput, ExecError> {
        Ok(ExecOutput::Shards(self.run_workers(plan, dir)?))
    }
}
