//! Per-scenario completion records: the currency of crash-consistent,
//! resumable campaign execution.
//!
//! Every executor stamps a scenario's artifact pair (CSV + JSON) with a
//! small [`CompletionRecord`] — `<slug>.done.json`, written atomically
//! *after* both artifacts are in place — recording the scenario's plan
//! ID, the plan hash it was executed under, and an FNV-1a digest of
//! each artifact's bytes. A record that exists therefore proves the
//! scenario finished under a known plan with known bytes on disk.
//!
//! `--resume` re-plans the campaign and [validates](CompletionRecord::status)
//! each scenario's record against the *current* plan hash and the bytes
//! actually on disk: only scenarios whose record checks out on every
//! axis are skipped, so stale records from an older spec, torn or
//! truncated artifacts, and half-finished shards all re-execute instead
//! of poisoning the merged campaign. The merger uses the same check to
//! tell "incomplete but resumable" apart from genuine corruption.

use crate::atomic::atomic_write;
use crate::plan::fnv1a_hex;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// File-name suffix of completion records (`<slug>.done.json`).
pub const COMPLETION_SUFFIX: &str = ".done.json";

/// The completion stamp written next to a scenario's CSV/JSON artifact
/// pair once both are fully on disk.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompletionRecord {
    /// Stable plan-order scenario ID.
    pub id: usize,
    /// The artifact slug the record describes.
    pub slug: String,
    /// Hash of the plan the scenario was executed under.
    pub plan_hash: String,
    /// FNV-1a digest (16 hex digits) of the CSV artifact's bytes.
    pub csv_digest: String,
    /// FNV-1a digest (16 hex digits) of the JSON artifact's bytes.
    pub json_digest: String,
}

/// What validating a scenario's completion state found.
#[derive(Clone, Debug, PartialEq)]
pub enum Completion {
    /// The record exists, belongs to this plan, and both artifact
    /// digests match the bytes on disk: the scenario is done.
    Complete,
    /// No record (or no artifacts): the scenario never finished here —
    /// resumable by re-executing it.
    Incomplete,
    /// A record exists but disagrees with the plan or with the bytes on
    /// disk (stale spec, tampered or externally corrupted artifact);
    /// the payload says which check failed.
    Mismatch(String),
}

impl Completion {
    /// `true` only for [`Completion::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Self::Complete)
    }
}

impl CompletionRecord {
    /// Path of the completion record for `slug` under `dir`.
    pub fn path(dir: &Path, slug: &str) -> PathBuf {
        dir.join(format!("{slug}{COMPLETION_SUFFIX}"))
    }

    /// The digest the records use: FNV-1a over the artifact bytes,
    /// rendered as 16 hex digits.
    pub fn digest(bytes: &[u8]) -> String {
        fnv1a_hex([bytes])
    }

    /// Stamp a scenario complete: write its record (atomically) from
    /// the artifact bytes just written. Call only after both artifacts
    /// have been renamed into place — the record is the commit point.
    pub fn stamp(
        dir: &Path,
        id: usize,
        slug: &str,
        plan_hash: &str,
        csv: &[u8],
        json: &[u8],
    ) -> std::io::Result<PathBuf> {
        let record = Self {
            id,
            slug: slug.to_string(),
            plan_hash: plan_hash.to_string(),
            csv_digest: Self::digest(csv),
            json_digest: Self::digest(json),
        };
        let path = Self::path(dir, slug);
        let body = serde_json::to_string_pretty(&record).expect("CompletionRecord serializes");
        atomic_write(&path, body.as_bytes())?;
        Ok(path)
    }

    /// Validate the completion state of scenario (`id`, `slug`) under
    /// `plan_hash` in `dir`: record present and parsing, identity and
    /// plan hash matching, and both artifacts on disk with matching
    /// digests.
    pub fn status(dir: &Path, id: usize, slug: &str, plan_hash: &str) -> Completion {
        let record_path = Self::path(dir, slug);
        let body = match std::fs::read_to_string(&record_path) {
            Ok(body) => body,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Completion::Incomplete,
            Err(e) => return Completion::Mismatch(format!("unreadable completion record: {e}")),
        };
        let record: Self = match serde_json::from_str(&body) {
            Ok(r) => r,
            Err(e) => {
                return Completion::Mismatch(format!("completion record does not parse: {e}"))
            }
        };
        if record.id != id || record.slug != slug {
            return Completion::Mismatch(format!(
                "completion record identifies scenario {} '{}', expected {} '{}'",
                record.id, record.slug, id, slug
            ));
        }
        if record.plan_hash != plan_hash {
            return Completion::Mismatch(format!(
                "completion record belongs to plan {}, current plan is {plan_hash}",
                record.plan_hash
            ));
        }
        for (ext, recorded) in [("csv", &record.csv_digest), ("json", &record.json_digest)] {
            let artifact = dir.join(format!("{slug}.{ext}"));
            let bytes = match std::fs::read(&artifact) {
                Ok(b) => b,
                // A recorded-complete scenario whose artifact vanished
                // (deleted outputs, partial copy): not corruption — the
                // scenario simply has to run again.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Completion::Incomplete
                }
                Err(e) => {
                    return Completion::Mismatch(format!("unreadable {}: {e}", artifact.display()))
                }
            };
            let actual = Self::digest(&bytes);
            if &actual != recorded {
                return Completion::Mismatch(format!(
                    "{} digest {actual} does not match recorded {recorded} (torn or modified file)",
                    artifact.display()
                ));
            }
        }
        Completion::Complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("samr-resume-test-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn stamp_pair(dir: &Path, slug: &str, plan: &str) {
        std::fs::write(dir.join(format!("{slug}.csv")), b"csv-bytes").unwrap();
        std::fs::write(dir.join(format!("{slug}.json")), b"json-bytes").unwrap();
        CompletionRecord::stamp(dir, 7, slug, plan, b"csv-bytes", b"json-bytes").unwrap();
    }

    #[test]
    fn stamped_scenarios_validate_complete() {
        let dir = temp_dir("complete");
        stamp_pair(&dir, "s", "abc123");
        assert_eq!(
            CompletionRecord::status(&dir, 7, "s", "abc123"),
            Completion::Complete
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_record_or_artifact_is_incomplete() {
        let dir = temp_dir("incomplete");
        assert_eq!(
            CompletionRecord::status(&dir, 7, "s", "abc123"),
            Completion::Incomplete
        );
        stamp_pair(&dir, "s", "abc123");
        std::fs::remove_file(dir.join("s.csv")).unwrap();
        assert_eq!(
            CompletionRecord::status(&dir, 7, "s", "abc123"),
            Completion::Incomplete
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_plan_or_identity_is_a_mismatch() {
        let dir = temp_dir("foreign");
        stamp_pair(&dir, "s", "abc123");
        assert!(matches!(
            CompletionRecord::status(&dir, 7, "s", "other-plan"),
            Completion::Mismatch(_)
        ));
        assert!(matches!(
            CompletionRecord::status(&dir, 8, "s", "abc123"),
            Completion::Mismatch(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_artifact_bytes_are_a_mismatch() {
        let dir = temp_dir("torn");
        stamp_pair(&dir, "s", "abc123");
        std::fs::write(dir.join("s.csv"), b"csv-byt").unwrap(); // truncated
        match CompletionRecord::status(&dir, 7, "s", "abc123") {
            Completion::Mismatch(detail) => assert!(detail.contains("digest"), "{detail}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn records_roundtrip_through_json() {
        let r = CompletionRecord {
            id: 3,
            slug: "tp2d_hybrid_p8_g1".into(),
            plan_hash: "0123456789abcdef".into(),
            csv_digest: CompletionRecord::digest(b"a"),
            json_digest: CompletionRecord::digest(b"b"),
        };
        let back: CompletionRecord =
            serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(r, back);
    }
}
