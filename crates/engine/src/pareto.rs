//! Pareto-front analysis over campaign results: the paper's trade-off,
//! made explicit.
//!
//! The source paper frames SAMR partitioning as a *trade-off* — load
//! balance versus communication versus migration versus repartitioning
//! overhead — but a campaign's `campaign.csv` flattens every scenario
//! into one row and leaves that multi-objective structure on the floor.
//! This module recovers it: each scenario's summary artifact becomes an
//! objective vector ([`Objective`]), a dominance analysis separates the
//! non-dominated set from the dominated one, and the result is written
//! as the `campaign.pareto.json` artifact ([`CAMPAIGN_PARETO`]) next to
//! `campaign.csv` — by both the in-process campaign runner and the
//! shard merger, through this one code path, so a merged sharded
//! campaign's front is byte-identical to the unsharded run's.
//!
//! **Dominance.** All objectives are minimized. Vector `a` dominates
//! `b` iff `a[i] <= b[i]` for every objective and `a[i] < b[i]` for at
//! least one. Equal vectors never dominate each other, so duplicated
//! trade-offs all stay on the front — deterministic, and honest about
//! ties. Every dominated point records its lowest-id dominator *on the
//! front* (one always exists: dominance is a strict partial order, so
//! following dominators upward terminates at a non-dominated point that
//! dominates transitively).
//!
//! The front artifact also attributes the front: which partitioner
//! family owns how much of it ([`FamilyShare`]) and which scenario
//! anchors each objective's best corner ([`FrontRegion`]).

use crate::atomic::atomic_write;
use crate::merge::{CampaignManifest, CAMPAIGN_MANIFEST};
use crate::plan::{CampaignPlan, ShardStrategy};
use crate::scenario::ScenarioSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The front artifact schema identifier; bump when the JSON shape
/// changes.
pub const PARETO_SCHEMA: &str = "samr-pareto/1";

/// File name of the front artifact written next to `campaign.csv`.
pub const CAMPAIGN_PARETO: &str = "campaign.pareto.json";

/// One minimized objective extracted from a scenario summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Mean load-imbalance ratio (≥ 1; 1 is perfect balance).
    Imbalance,
    /// Mean grid-relative communication.
    Comm,
    /// Mean grid-relative migration.
    Migration,
    /// Mean partitioner-invocation cost per coarse step (machine-model
    /// units) — the regrid/repartitioning overhead.
    Overhead,
}

impl Objective {
    /// Every objective, in canonical artifact order.
    pub const ALL: [Objective; 4] = [
        Objective::Imbalance,
        Objective::Comm,
        Objective::Migration,
        Objective::Overhead,
    ];

    /// The CLI/artifact name of the objective.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Imbalance => "imbalance",
            Self::Comm => "comm",
            Self::Migration => "migration",
            Self::Overhead => "overhead",
        }
    }

    /// Parse an objective from its CLI name.
    pub fn parse(name: &str) -> Result<Self, ParetoError> {
        Self::ALL
            .into_iter()
            .find(|o| o.name() == name)
            .ok_or_else(|| ParetoError::UnknownObjective(name.to_string()))
    }

    /// Extract the objective's value from a scenario summary.
    pub fn value(&self, s: &ScenarioSummary) -> f64 {
        match self {
            Self::Imbalance => s.mean_imbalance,
            Self::Comm => s.mean_rel_comm,
            Self::Migration => s.mean_rel_migration,
            Self::Overhead => s.mean_partition_cost,
        }
    }
}

/// Parse a comma-separated objective list (`imbalance,comm,…`):
/// at least one objective, duplicates rejected.
pub fn parse_objectives(csv: &str) -> Result<Vec<Objective>, ParetoError> {
    let mut out: Vec<Objective> = Vec::new();
    for name in csv.split(',').filter(|s| !s.is_empty()) {
        let o = Objective::parse(name)?;
        if out.contains(&o) {
            return Err(ParetoError::DuplicateObjective(name.to_string()));
        }
        out.push(o);
    }
    if out.is_empty() {
        return Err(ParetoError::NoObjectives);
    }
    Ok(out)
}

/// Weak Pareto dominance for minimization: `a` dominates `b` iff no
/// objective of `a` is worse and at least one is strictly better.
/// Equal vectors dominate in neither direction.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Which points of a set are non-dominated (`true` = on the front).
/// O(n²) pairwise comparison — exact, deterministic and fast for
/// campaign-scale sets.
pub fn front_mask(points: &[Vec<f64>]) -> Vec<bool> {
    points
        .iter()
        .map(|p| !points.iter().any(|q| dominates(q, p)))
        .collect()
}

/// One scenario's input to the front computation: its plan identity
/// plus the summary artifact the objectives are read from.
#[derive(Clone, Debug)]
pub struct ParetoEntry {
    /// Stable plan-order scenario ID.
    pub id: usize,
    /// Unique artifact slug (`<slug>.json` held the summary).
    pub slug: String,
    /// The parsed summary artifact.
    pub summary: ScenarioSummary,
}

/// One scenario in the front artifact: identity, objective vector and
/// dominance verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Stable plan-order scenario ID.
    pub id: usize,
    /// Unique artifact slug.
    pub slug: String,
    /// Application name (e.g. `TP2D`).
    pub app: String,
    /// Partitioner family/preset slug (e.g. `hybrid`,
    /// `domain-sfc-morton`).
    pub partitioner: String,
    /// The objective vector, aligned with the artifact's `objectives`
    /// list.
    pub objectives: Vec<f64>,
    /// `true` when no other scenario dominates this one.
    pub on_front: bool,
    /// For dominated points: the lowest-id front member that dominates
    /// this one. `null` for front members.
    pub dominated_by: Option<usize>,
}

/// The front scenario anchoring one objective's best corner: the front
/// member with the smallest value on that axis (ties broken by lowest
/// scenario ID).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrontRegion {
    /// The objective this corner minimizes.
    pub objective: String,
    /// Anchoring scenario ID.
    pub id: usize,
    /// Anchoring scenario slug.
    pub slug: String,
    /// The anchor's partitioner family slug.
    pub partitioner: String,
    /// The anchor's value on this objective.
    pub value: f64,
}

/// How much of the front one partitioner family owns.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FamilyShare {
    /// Partitioner family/preset slug.
    pub partitioner: String,
    /// Scenarios of this family on the front.
    pub on_front: usize,
    /// Scenarios of this family in the campaign.
    pub scenarios: usize,
}

/// The `campaign.pareto.json` artifact: the dominance analysis of one
/// campaign under one objective set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParetoFront {
    /// Always [`PARETO_SCHEMA`].
    pub schema: String,
    /// Hash of the campaign plan the scenarios came from.
    pub plan_hash: String,
    /// Objective names, in vector order.
    pub objectives: Vec<String>,
    /// Scenarios analyzed.
    pub scenario_count: usize,
    /// IDs of the non-dominated scenarios, ascending.
    pub front: Vec<usize>,
    /// The best-corner anchor per objective.
    pub regions: Vec<FrontRegion>,
    /// Front ownership per partitioner family, sorted by family slug.
    pub families: Vec<FamilyShare>,
    /// Every scenario's point, in plan order.
    pub points: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// The points on the front, in plan order.
    pub fn front_points(&self) -> impl Iterator<Item = &ParetoPoint> {
        self.points.iter().filter(|p| p.on_front)
    }
}

/// Why a front could not be computed or loaded.
#[derive(Debug)]
pub enum ParetoError {
    /// The objective list was empty.
    NoObjectives,
    /// An objective name appeared twice in the list.
    DuplicateObjective(String),
    /// An objective name is not in the registry.
    UnknownObjective(String),
    /// A scenario's objective value is NaN or infinite — dominance over
    /// non-finite values would be order-dependent nonsense.
    NonFinite {
        /// The offending scenario's slug.
        slug: String,
        /// The objective whose value is non-finite.
        objective: String,
    },
    /// The campaign directory has no `campaign.manifest.json` (not a
    /// finished campaign directory).
    MissingManifest(PathBuf),
    /// A manifest or summary artifact does not parse.
    BadArtifact(PathBuf, String),
    /// The manifest's recorded plan hash disagrees with re-planning its
    /// own spec — the directory mixes artifacts of different campaigns.
    PlanMismatch {
        /// Hash the manifest recorded.
        recorded: String,
        /// Hash the spec re-plans to.
        replanned: String,
    },
    /// Reading or writing artifacts failed.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for ParetoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoObjectives => write!(
                f,
                "no objectives selected (expected a comma-separated subset of \
                 imbalance, comm, migration, overhead)"
            ),
            Self::DuplicateObjective(name) => {
                write!(f, "objective '{name}' listed more than once")
            }
            Self::UnknownObjective(name) => write!(
                f,
                "unknown objective '{name}' (expected imbalance | comm | migration | overhead)"
            ),
            Self::NonFinite { slug, objective } => write!(
                f,
                "scenario '{slug}' has a non-finite '{objective}' value: \
                 dominance is undefined over NaN/infinite objectives"
            ),
            Self::MissingManifest(dir) => write!(
                f,
                "{} has no {CAMPAIGN_MANIFEST} (not a finished campaign directory?)",
                dir.display()
            ),
            Self::BadArtifact(path, e) => write!(f, "{} does not parse: {e}", path.display()),
            Self::PlanMismatch {
                recorded,
                replanned,
            } => write!(
                f,
                "manifest records plan {recorded} but its spec re-plans to {replanned}: \
                 the directory mixes artifacts of different campaigns"
            ),
            Self::Io(path, e) => write!(f, "{}: {e}", path.display()),
        }
    }
}

impl std::error::Error for ParetoError {}

impl From<ParetoError> for std::io::Error {
    fn from(e: ParetoError) -> Self {
        match e {
            ParetoError::Io(_, io) => io,
            other => std::io::Error::other(other.to_string()),
        }
    }
}

/// Run the dominance analysis: every entry becomes a [`ParetoPoint`],
/// the non-dominated set is identified, and the front is attributed to
/// partitioner families and objective corners. Entries must be in plan
/// order (ascending ID) — both artifact-producing paths feed them that
/// way, which is what makes the merged and unsharded artifacts
/// byte-identical.
pub fn compute_front(
    plan_hash: &str,
    objectives: &[Objective],
    entries: &[ParetoEntry],
) -> Result<ParetoFront, ParetoError> {
    if objectives.is_empty() {
        return Err(ParetoError::NoObjectives);
    }
    let vectors: Vec<Vec<f64>> = entries
        .iter()
        .map(|e| {
            objectives
                .iter()
                .map(|o| {
                    let v = o.value(&e.summary);
                    if v.is_finite() {
                        Ok(v)
                    } else {
                        Err(ParetoError::NonFinite {
                            slug: e.slug.clone(),
                            objective: o.name().to_string(),
                        })
                    }
                })
                .collect()
        })
        .collect::<Result<_, _>>()?;
    let mask = front_mask(&vectors);
    let points: Vec<ParetoPoint> = entries
        .iter()
        .zip(&vectors)
        .zip(&mask)
        .map(|((e, v), &on_front)| {
            // The lowest-id front dominator; front members have none.
            let dominated_by = (!on_front)
                .then(|| {
                    entries
                        .iter()
                        .zip(&vectors)
                        .zip(&mask)
                        .find(|((_, q), &m)| m && dominates(q, v))
                        .map(|((d, _), _)| d.id)
                })
                .flatten();
            ParetoPoint {
                id: e.id,
                slug: e.slug.clone(),
                app: e.summary.scenario.app.name().to_string(),
                partitioner: e.summary.scenario.partitioner.slug(),
                objectives: v.clone(),
                on_front,
                dominated_by,
            }
        })
        .collect();
    let front: Vec<usize> = points.iter().filter(|p| p.on_front).map(|p| p.id).collect();
    let regions = objectives
        .iter()
        .enumerate()
        .filter_map(|(axis, o)| {
            points
                .iter()
                .filter(|p| p.on_front)
                .min_by(|a, b| {
                    a.objectives[axis]
                        .partial_cmp(&b.objectives[axis])
                        .expect("finite objectives compare")
                        .then(a.id.cmp(&b.id))
                })
                .map(|p| FrontRegion {
                    objective: o.name().to_string(),
                    id: p.id,
                    slug: p.slug.clone(),
                    partitioner: p.partitioner.clone(),
                    value: p.objectives[axis],
                })
        })
        .collect();
    let mut families: BTreeMap<String, FamilyShare> = BTreeMap::new();
    for p in &points {
        let share = families
            .entry(p.partitioner.clone())
            .or_insert_with(|| FamilyShare {
                partitioner: p.partitioner.clone(),
                on_front: 0,
                scenarios: 0,
            });
        share.scenarios += 1;
        if p.on_front {
            share.on_front += 1;
        }
    }
    Ok(ParetoFront {
        schema: PARETO_SCHEMA.to_string(),
        plan_hash: plan_hash.to_string(),
        objectives: objectives.iter().map(|o| o.name().to_string()).collect(),
        scenario_count: entries.len(),
        front,
        regions,
        families: families.into_values().collect(),
        points,
    })
}

/// Parse summary bytes into a [`ParetoEntry`] (shared by the directory
/// loader and the merger, which already holds the artifact bytes).
pub fn entry_from_json(
    id: usize,
    slug: &str,
    path: &Path,
    json: &[u8],
) -> Result<ParetoEntry, ParetoError> {
    let text = std::str::from_utf8(json)
        .map_err(|e| ParetoError::BadArtifact(path.to_path_buf(), e.to_string()))?;
    let summary: ScenarioSummary = serde_json::from_str(text)
        .map_err(|e| ParetoError::BadArtifact(path.to_path_buf(), e.to_string()))?;
    Ok(ParetoEntry {
        id,
        slug: slug.to_string(),
        summary,
    })
}

/// Load the scenario entries of a finished campaign directory: read its
/// [`CampaignManifest`], re-plan the recorded spec to recover the
/// plan-order (id, slug) list — verifying the recorded plan hash, so a
/// directory mixing two campaigns' artifacts is rejected — then read
/// each `<slug>.json` summary. Returns the plan hash and the entries in
/// plan order.
pub fn load_entries(dir: &Path) -> Result<(String, Vec<ParetoEntry>), ParetoError> {
    let manifest_path = dir.join(CAMPAIGN_MANIFEST);
    let json = std::fs::read_to_string(&manifest_path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            ParetoError::MissingManifest(dir.to_path_buf())
        } else {
            ParetoError::Io(manifest_path.clone(), e)
        }
    })?;
    let manifest: CampaignManifest = serde_json::from_str(&json)
        .map_err(|e| ParetoError::BadArtifact(manifest_path.clone(), e.to_string()))?;
    // The plan hash is shard-count and strategy invariant, so re-planning
    // single-shard recovers the exact (id, slug) space of any run.
    let plan = CampaignPlan::new(&manifest.spec, 1, ShardStrategy::default());
    if plan.plan_hash != manifest.plan_hash {
        return Err(ParetoError::PlanMismatch {
            recorded: manifest.plan_hash,
            replanned: plan.plan_hash,
        });
    }
    let entries = plan
        .scenarios
        .iter()
        .map(|p| {
            let path = dir.join(format!("{}.json", p.slug));
            let bytes = std::fs::read(&path).map_err(|e| ParetoError::Io(path.clone(), e))?;
            entry_from_json(p.id, &p.slug, &path, &bytes)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((plan.plan_hash, entries))
}

/// Compute the front of a finished campaign directory under an
/// objective set: [`load_entries`] + [`compute_front`].
pub fn front_for_dir(dir: &Path, objectives: &[Objective]) -> Result<ParetoFront, ParetoError> {
    let (plan_hash, entries) = load_entries(dir)?;
    compute_front(&plan_hash, objectives, &entries)
}

/// Write the front artifact into a campaign directory (atomically,
/// like every campaign artifact).
pub fn write_front(dir: &Path, front: &ParetoFront) -> Result<PathBuf, ParetoError> {
    let path = dir.join(CAMPAIGN_PARETO);
    let json = serde_json::to_string_pretty(front).expect("ParetoFront serializes");
    atomic_write(&path, json.as_bytes()).map_err(|e| ParetoError::Io(path.clone(), e))?;
    Ok(path)
}

/// Read a front artifact back from a campaign directory.
pub fn read_front(dir: &Path) -> Result<ParetoFront, ParetoError> {
    let path = dir.join(CAMPAIGN_PARETO);
    let json = std::fs::read_to_string(&path).map_err(|e| ParetoError::Io(path.clone(), e))?;
    serde_json::from_str(&json).map_err(|e| ParetoError::BadArtifact(path, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignSpec;
    use crate::scenario::Scenario;
    use crate::spec::PartitionerSpec;
    use samr_apps::{AppKind, TraceGenConfig};
    use samr_sim::SimConfig;

    fn summary_with(objectives: [f64; 4]) -> ScenarioSummary {
        let scenario = Scenario::new(
            AppKind::Tp2d,
            TraceGenConfig::smoke(),
            PartitionerSpec::parse("hybrid").unwrap(),
            SimConfig {
                nprocs: 4,
                ..SimConfig::default()
            },
        );
        ScenarioSummary {
            partitioner_name: "hybrid".into(),
            steps: 1,
            total_time: 1.0,
            mean_imbalance: objectives[0],
            mean_rel_comm: objectives[1],
            mean_rel_migration: objectives[2],
            mean_partition_cost: objectives[3],
            switches: 0,
            switch_migration_cells: 0,
            comm_shape: crate::validation::ShapeStats::compare(&[0.0, 1.0], &[0.0, 1.0]),
            migration_shape: crate::validation::ShapeStats::compare(&[0.0, 1.0], &[0.0, 1.0]),
            scenario,
        }
    }

    fn entries(vectors: &[[f64; 4]]) -> Vec<ParetoEntry> {
        vectors
            .iter()
            .enumerate()
            .map(|(id, v)| ParetoEntry {
                id,
                slug: format!("s{id}"),
                summary: summary_with(*v),
            })
            .collect()
    }

    #[test]
    fn dominance_is_strict_on_equal_vectors() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[3.0, 1.0]));
        assert!(!dominates(&[2.0, 3.0], &[1.0, 2.0]));
    }

    #[test]
    fn front_mask_keeps_all_ties() {
        // Two identical vectors: neither dominates the other, both stay.
        let mask = front_mask(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]]);
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn compute_front_records_dominators_and_regions() {
        // s0 is the balance corner, s1 the comm corner, s2 dominated by
        // s0, s3 dominated by both (s0 is the lowest-id dominator).
        let es = entries(&[
            [1.0, 0.5, 0.1, 10.0],
            [1.5, 0.1, 0.2, 20.0],
            [1.2, 0.6, 0.2, 15.0],
            [2.0, 0.9, 0.5, 30.0],
        ]);
        let f = compute_front("deadbeef", &Objective::ALL, &es).unwrap();
        assert_eq!(f.schema, PARETO_SCHEMA);
        assert_eq!(f.front, vec![0, 1]);
        assert_eq!(f.points[2].dominated_by, Some(0));
        assert_eq!(f.points[3].dominated_by, Some(0));
        assert!(f.points[0].dominated_by.is_none());
        let imb = f
            .regions
            .iter()
            .find(|r| r.objective == "imbalance")
            .unwrap();
        assert_eq!(imb.id, 0);
        let comm = f.regions.iter().find(|r| r.objective == "comm").unwrap();
        assert_eq!(comm.id, 1);
        // One family in this synthetic set, owning the whole front.
        assert_eq!(f.families.len(), 1);
        assert_eq!(f.families[0].on_front, 2);
        assert_eq!(f.families[0].scenarios, 4);
    }

    #[test]
    fn objective_subset_changes_the_front() {
        // On (imbalance, comm) s1 dominates s0; adding migration makes
        // them incomparable.
        let es = entries(&[[2.0, 0.5, 0.0, 0.0], [1.0, 0.1, 0.5, 0.0]]);
        let two = compute_front("h", &[Objective::Imbalance, Objective::Comm], &es).unwrap();
        assert_eq!(two.front, vec![1]);
        let three = compute_front(
            "h",
            &[Objective::Imbalance, Objective::Comm, Objective::Migration],
            &es,
        )
        .unwrap();
        assert_eq!(three.front, vec![0, 1]);
    }

    #[test]
    fn non_finite_objectives_are_rejected() {
        let es = entries(&[[1.0, f64::NAN, 0.0, 0.0]]);
        let err = compute_front("h", &Objective::ALL, &es).unwrap_err();
        assert!(matches!(err, ParetoError::NonFinite { .. }), "{err}");
    }

    #[test]
    fn objective_names_roundtrip_and_lists_parse() {
        for o in Objective::ALL {
            assert_eq!(Objective::parse(o.name()).unwrap(), o);
        }
        assert_eq!(
            parse_objectives("imbalance,comm").unwrap(),
            vec![Objective::Imbalance, Objective::Comm]
        );
        assert!(matches!(
            parse_objectives(""),
            Err(ParetoError::NoObjectives)
        ));
        assert!(matches!(
            parse_objectives("comm,comm"),
            Err(ParetoError::DuplicateObjective(_))
        ));
        assert!(matches!(
            parse_objectives("speed"),
            Err(ParetoError::UnknownObjective(_))
        ));
    }

    #[test]
    fn front_roundtrips_through_json() {
        let es = entries(&[[1.0, 0.5, 0.1, 10.0], [1.5, 0.1, 0.2, 20.0]]);
        let f = compute_front("cafe", &Objective::ALL, &es).unwrap();
        let json = serde_json::to_string_pretty(&f).unwrap();
        let back: ParetoFront = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn campaign_runner_writes_the_front_artifact() {
        let spec = CampaignSpec::new(TraceGenConfig::smoke())
            .apps([AppKind::Tp2d])
            .partitioners([
                PartitionerSpec::parse("hybrid").unwrap(),
                PartitionerSpec::parse("domain-sfc").unwrap(),
            ])
            .nprocs([4]);
        let dir = std::env::temp_dir().join(format!("samr-pareto-run-{}", std::process::id()));
        let (_, paths) = crate::campaign::Campaign::run_to_dir(&spec, &dir).unwrap();
        assert!(paths.iter().any(|p| p.ends_with(CAMPAIGN_PARETO)));
        let front = read_front(&dir).unwrap();
        assert_eq!(front.scenario_count, 2);
        assert_eq!(front.objectives.len(), Objective::ALL.len());
        assert!(!front.front.is_empty(), "a nonempty campaign has a front");
        // The artifact agrees with recomputing from the directory.
        let recomputed = front_for_dir(&dir, &Objective::ALL).unwrap();
        assert_eq!(front, recomputed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
