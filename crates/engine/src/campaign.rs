//! Cartesian campaign specs and the plan → execute → merge front end.
//!
//! [`CampaignSpec`] declares the sweep; [`Campaign`] is the convenience
//! runner gluing the three explicit layers together: a spec is expanded
//! by the planner ([`crate::plan`]) into a deterministic
//! [`crate::plan::CampaignPlan`], executed by an executor
//! ([`crate::exec`]) and — when sharded — reassembled by the merger
//! ([`crate::merge`]). `Campaign::run`/`run_to_dir` are thin wrappers
//! over the single-shard in-process path.

use crate::atomic::atomic_write;
use crate::exec::RayonExecutor;
use crate::merge::{CampaignManifest, CAMPAIGN_CSV};
use crate::plan::{CampaignPlan, ShardStrategy};
use crate::policy::PolicySpec;
use crate::scenario::{Scenario, ScenarioOutcome};
use crate::spec::PartitionerSpec;
use samr_apps::{AppKind, TraceGenConfig};
use samr_sim::{MachineModel, SimConfig};
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// A declarative sweep: the cartesian product of applications,
/// partitioner specifications, repartitioning policies, processor
/// counts, ghost widths and machine models over one trace
/// configuration. The `dims` axis filters which spatial dimensions
/// participate, so one campaign can sweep 2-D and 3-D workloads
/// together (`dims: [2, 3]`) or pin either; the `machines` axis makes
/// PAC-triple studies (application × partitioner × machine) one
/// campaign instead of one per machine; the `policies` axis pits
/// static partitioner assignment against adaptive mid-run switching
/// ([`PolicySpec`]) without multiplying campaigns.
///
/// Serde is hand-written so `policies` is omitted when it is the
/// default `[Static]` (and tolerated when missing): the serialized
/// spec feeds the plan hash, and every pre-policy campaign must keep
/// its hash — and therefore its resumability and golden artifacts —
/// byte-identical.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Applications to sweep.
    pub apps: Vec<AppKind>,
    /// Spatial dimensions to sweep (applications whose dimension is not
    /// listed are skipped during expansion).
    pub dims: Vec<usize>,
    /// Partitioner specifications to sweep.
    pub partitioners: Vec<PartitionerSpec>,
    /// Processor counts to sweep.
    pub nprocs: Vec<usize>,
    /// Ghost-cell widths to sweep.
    pub ghost_widths: Vec<i64>,
    /// Trace-generation configuration shared by every scenario.
    pub trace: TraceGenConfig,
    /// Machine cost models to sweep (use the
    /// [`MachineModel::registry`] presets for named slugs; non-default
    /// machines tag their scenario slugs).
    pub machines: Vec<MachineModel>,
    /// Reuse the previous distribution on unchanged hierarchies (the
    /// paper's set-up; see [`SimConfig::reuse_unchanged`]).
    pub reuse_unchanged: bool,
    /// Repartitioning policies to sweep (default `[Static]`; non-static
    /// policies tag their scenario slugs `_a<preset>`).
    pub policies: Vec<PolicySpec>,
}

impl Serialize for CampaignSpec {
    fn serialize(&self) -> Value {
        let mut entries = vec![
            ("apps".to_string(), self.apps.serialize()),
            ("dims".to_string(), self.dims.serialize()),
            ("partitioners".to_string(), self.partitioners.serialize()),
            ("nprocs".to_string(), self.nprocs.serialize()),
            ("ghost_widths".to_string(), self.ghost_widths.serialize()),
            ("trace".to_string(), self.trace.serialize()),
            ("machines".to_string(), self.machines.serialize()),
            (
                "reuse_unchanged".to_string(),
                self.reuse_unchanged.serialize(),
            ),
        ];
        if self.policies != vec![PolicySpec::Static] {
            entries.push(("policies".to_string(), self.policies.serialize()));
        }
        Value::Map(entries)
    }
}

impl Deserialize for CampaignSpec {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            apps: serde::field(v, "apps")?,
            dims: serde::field(v, "dims")?,
            partitioners: serde::field(v, "partitioners")?,
            nprocs: serde::field(v, "nprocs")?,
            ghost_widths: serde::field(v, "ghost_widths")?,
            trace: serde::field(v, "trace")?,
            machines: serde::field(v, "machines")?,
            reuse_unchanged: serde::field(v, "reuse_unchanged")?,
            policies: match v.get("policies") {
                Some(p) => Deserialize::deserialize(p)
                    .map_err(|e| serde::Error::msg(format!("field `policies`: {e}")))?,
                None => vec![PolicySpec::Static],
            },
        })
    }
}

impl CampaignSpec {
    /// A campaign over the paper's four 2-D applications with the default
    /// hybrid partitioner, 16 processors and ghost width 1; extend with
    /// the builder methods (add [`AppKind::Sp3d`] and `dims([2, 3])` for
    /// a mixed-dimension sweep).
    pub fn new(trace: TraceGenConfig) -> Self {
        Self {
            apps: AppKind::ALL.to_vec(),
            dims: vec![2, 3],
            partitioners: vec![PartitionerSpec::parse("hybrid").expect("registry name")],
            nprocs: vec![16],
            ghost_widths: vec![1],
            trace,
            machines: vec![MachineModel::default()],
            reuse_unchanged: true,
            policies: vec![PolicySpec::Static],
        }
    }

    /// Replace the application axis (duplicates dropped, order kept).
    /// The dimension axis defaults to `[2, 3]` (no filtering), so
    /// `.apps([Sp3d])` alone already sweeps 3-D; only an explicit
    /// [`CampaignSpec::dims`] call narrows it, and builder-call order
    /// does not matter.
    pub fn apps(mut self, apps: impl IntoIterator<Item = AppKind>) -> Self {
        self.apps = dedup_axis(apps);
        self
    }

    /// Replace the dimension axis (duplicates dropped, order kept):
    /// applications whose dimension is not listed are skipped during
    /// expansion.
    pub fn dims(mut self, dims: impl IntoIterator<Item = usize>) -> Self {
        self.dims = dedup_axis(dims);
        self
    }

    /// Replace the partitioner axis (duplicates dropped, order kept).
    pub fn partitioners(mut self, specs: impl IntoIterator<Item = PartitionerSpec>) -> Self {
        self.partitioners = dedup_axis(specs);
        self
    }

    /// Replace the processor-count axis (duplicates dropped, order
    /// kept).
    pub fn nprocs(mut self, nprocs: impl IntoIterator<Item = usize>) -> Self {
        self.nprocs = dedup_axis(nprocs);
        self
    }

    /// Replace the ghost-width axis (duplicates dropped, order kept).
    pub fn ghost_widths(mut self, widths: impl IntoIterator<Item = i64>) -> Self {
        self.ghost_widths = dedup_axis(widths);
        self
    }

    /// Pin the machine axis to a single model.
    pub fn machine(self, machine: MachineModel) -> Self {
        self.machines([machine])
    }

    /// Replace the machine-model axis (duplicates dropped, order kept).
    pub fn machines(mut self, machines: impl IntoIterator<Item = MachineModel>) -> Self {
        self.machines = dedup_axis(machines);
        self
    }

    /// Replace the repartitioning-policy axis (duplicates dropped,
    /// order kept).
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicySpec>) -> Self {
        self.policies = dedup_axis(policies);
        self
    }

    /// The applications that actually expand: those whose dimension is on
    /// the `dims` axis.
    fn active_apps(&self) -> Vec<AppKind> {
        self.apps
            .iter()
            .copied()
            .filter(|a| self.dims.contains(&a.dim()))
            .collect()
    }

    /// Number of scenarios the spec expands to.
    pub fn len(&self) -> usize {
        self.active_apps().len()
            * self.partitioners.len()
            * self.policies.len()
            * self.nprocs.len()
            * self.ghost_widths.len()
            * self.machines.len()
    }

    /// `true` when at least one axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the cartesian product into concrete scenarios, in a
    /// deterministic app-major order (apps, then partitioners, then
    /// policies, then processor counts, then ghost widths, then
    /// machines). With the default `[Static]` policy axis the order is
    /// byte-identical to the pre-policy expansion.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for app in self.active_apps() {
            for &partitioner in &self.partitioners {
                for &policy in &self.policies {
                    for &nprocs in &self.nprocs {
                        for &ghost_width in &self.ghost_widths {
                            for &machine in &self.machines {
                                out.push(
                                    Scenario::new(
                                        app,
                                        self.trace.clone(),
                                        partitioner,
                                        SimConfig {
                                            nprocs,
                                            ghost_width,
                                            machine,
                                            reuse_unchanged: self.reuse_unchanged,
                                        },
                                    )
                                    .with_policy(policy),
                                );
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Drop exact duplicates from a sweep axis, preserving first-appearance
/// order (a repeated value would expand to identical scenarios whose
/// artifacts overwrite each other).
fn dedup_axis<T: PartialEq>(values: impl IntoIterator<Item = T>) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    for v in values {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// The campaign runner: thin wrappers over plan → execute (→ artifact
/// write) for the common single-process case. Sharded and
/// multi-process execution use the layers directly (see
/// [`crate::exec::ShardExecutor`], [`crate::exec::WorkerExecutor`] and
/// [`crate::merge::merge_shards`]).
pub struct Campaign;

impl Campaign {
    /// Expand and execute a campaign spec in-process, rayon-parallel
    /// over scenarios, returning outcomes in plan order.
    ///
    /// Traces and model series are generated once per application up
    /// front (in parallel) and shared through the process-wide store, so
    /// the scenario sweep itself is pure partition-and-simulate work.
    pub fn run(spec: &CampaignSpec) -> Vec<ScenarioOutcome> {
        let plan = CampaignPlan::new(spec, 1, ShardStrategy::default());
        RayonExecutor::default().run_plan(&plan)
    }

    /// Run a campaign and write its artifacts into `dir`: one CSV
    /// (per-step series) and one JSON summary per scenario (named by
    /// the plan's unique slugs, each pair stamped with a completion
    /// record), the canonical concatenated `campaign.csv`, and the
    /// audit `campaign.manifest.json`. Returns the outcomes and every
    /// path written.
    pub fn run_to_dir(
        spec: &CampaignSpec,
        dir: &Path,
    ) -> std::io::Result<(Vec<ScenarioOutcome>, Vec<PathBuf>)> {
        Self::run_to_dir_resume(spec, dir, false).map(|run| (run.outcomes, run.paths))
    }

    /// [`Campaign::run_to_dir`] with resumption: when `resume` is set,
    /// scenarios whose completion records in `dir` validate against the
    /// re-planned campaign (same plan hash, artifact bytes matching
    /// their recorded digests) are skipped, only the remainder
    /// executes, and the canonical `campaign.csv` is reassembled from
    /// the artifacts on disk — byte-identical to an uninterrupted run.
    pub fn run_to_dir_resume(
        spec: &CampaignSpec,
        dir: &Path,
        resume: bool,
    ) -> std::io::Result<CampaignRun> {
        let start = Instant::now();
        let plan = CampaignPlan::new(spec, 1, ShardStrategy::default());
        std::fs::create_dir_all(dir)?;
        // The executor writes and stamps each scenario's artifacts the
        // moment it finishes, so a kill mid-sweep banks every completed
        // scenario for the next --resume.
        let (executed, skipped) = RayonExecutor { resume }.run_remaining(&plan, dir)?;
        let mut paths = Vec::with_capacity(2 * plan.len() + 2);
        // Move each rendered CSV out of the executed triples: the bytes
        // are held once, then moved again into the campaign.csv parts.
        let mut fresh_csv: std::collections::HashMap<usize, String> =
            std::collections::HashMap::with_capacity(executed.len());
        let mut outcomes = Vec::with_capacity(executed.len());
        for (planned, outcome, csv) in executed {
            paths.push(dir.join(format!("{}.csv", planned.slug)));
            paths.push(dir.join(format!("{}.json", planned.slug)));
            fresh_csv.insert(planned.id, csv);
            outcomes.push(outcome);
        }
        // Assemble campaign.csv in plan order: freshly rendered parts
        // for what ran, validated on-disk artifacts for what was
        // skipped (their digests were just checked against the records).
        let mut parts: Vec<(String, String)> = Vec::with_capacity(plan.len());
        for planned in &plan.scenarios {
            let csv = match fresh_csv.remove(&planned.id) {
                Some(csv) => csv,
                None => {
                    let path = dir.join(format!("{}.csv", planned.slug));
                    paths.push(path.clone());
                    paths.push(dir.join(format!("{}.json", planned.slug)));
                    std::fs::read_to_string(&path)?
                }
            };
            parts.push((planned.slug.clone(), csv));
        }
        let campaign_csv = crate::merge::assemble_campaign_csv(
            parts.iter().map(|(s, c)| (s.as_str(), c.as_str())),
        );
        let csv_path = dir.join(CAMPAIGN_CSV);
        atomic_write(&csv_path, campaign_csv.as_bytes())?;
        paths.push(csv_path);
        let manifest = CampaignManifest {
            plan_hash: plan.plan_hash.clone(),
            scenario_count: plan.len(),
            shards: 1,
            elapsed_seconds: start.elapsed().as_secs_f64(),
            spec: plan.spec.clone(),
        };
        paths.push(manifest.write(dir)?);
        // The trade-off front over the summaries just written: read the
        // artifacts back in plan order (executed and resumed alike went
        // through the same serializer) so the merged-shard path, which
        // also parses the on-disk bytes, produces the identical front.
        if !plan.is_empty() {
            let entries = plan
                .scenarios
                .iter()
                .map(|p| {
                    let path = dir.join(format!("{}.json", p.slug));
                    let bytes = std::fs::read(&path)?;
                    crate::pareto::entry_from_json(p.id, &p.slug, &path, &bytes)
                        .map_err(std::io::Error::from)
                })
                .collect::<std::io::Result<Vec<_>>>()?;
            let front = crate::pareto::compute_front(
                &plan.plan_hash,
                &crate::pareto::Objective::ALL,
                &entries,
            )?;
            paths.push(crate::pareto::write_front(dir, &front)?);
        }
        Ok(CampaignRun {
            outcomes,
            skipped,
            paths,
        })
    }
}

/// What one (possibly resumed) in-process campaign run did.
#[derive(Debug)]
pub struct CampaignRun {
    /// Outcomes of the scenarios executed this invocation, in plan
    /// order (a resumed run omits the skipped ones).
    pub outcomes: Vec<ScenarioOutcome>,
    /// Scenarios skipped because their completion records validated.
    pub skipped: usize,
    /// Every artifact path of the campaign (executed and skipped).
    pub paths: Vec<PathBuf>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_the_full_cartesian_product() {
        let spec = CampaignSpec::new(TraceGenConfig::smoke())
            .apps([AppKind::Rm2d, AppKind::Bl2d])
            .partitioners([
                PartitionerSpec::parse("hybrid").unwrap(),
                PartitionerSpec::parse("domain-sfc").unwrap(),
                PartitionerSpec::parse("meta").unwrap(),
            ])
            .nprocs([8, 16])
            .ghost_widths([1, 2]);
        assert_eq!(spec.len(), 2 * 3 * 2 * 2);
        let scenarios = spec.scenarios();
        assert_eq!(scenarios.len(), spec.len());
        // Every slug unique: the product has no duplicate cells.
        let mut slugs: Vec<String> = scenarios.iter().map(Scenario::slug).collect();
        slugs.sort();
        slugs.dedup();
        assert_eq!(slugs.len(), scenarios.len());
        // Deterministic app-major ordering.
        assert_eq!(scenarios[0].slug(), "rm2d_hybrid_p8_g1");
        assert_eq!(scenarios[1].slug(), "rm2d_hybrid_p8_g2");
        assert_eq!(scenarios[2].slug(), "rm2d_hybrid_p16_g1");
    }

    #[test]
    fn empty_axis_means_empty_campaign() {
        let spec = CampaignSpec::new(TraceGenConfig::smoke()).nprocs([]);
        assert!(spec.is_empty());
        assert!(Campaign::run(&spec).is_empty());
    }

    #[test]
    fn repeated_axis_values_are_deduplicated() {
        // `--nprocs 16,16` must not expand to colliding duplicate
        // scenarios whose artifacts would overwrite each other.
        let spec = CampaignSpec::new(TraceGenConfig::smoke())
            .apps([AppKind::Tp2d, AppKind::Tp2d])
            .nprocs([16, 16, 8]);
        assert_eq!(spec.apps, vec![AppKind::Tp2d]);
        assert_eq!(spec.nprocs, vec![16, 8]);
        assert_eq!(spec.len(), 2);
    }

    #[test]
    fn dims_axis_filters_applications() {
        let mixed = CampaignSpec::new(TraceGenConfig::smoke())
            .apps([AppKind::Tp2d, AppKind::Sp3d])
            .nprocs([4]);
        // The default dims axis covers both dimensions.
        assert_eq!(mixed.dims, vec![2, 3]);
        assert_eq!(mixed.len(), 2);
        // Pinning dims to 2 drops the 3-D app from the expansion…
        let flat = mixed.clone().dims([2]);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat.scenarios()[0].app, AppKind::Tp2d);
        // …and pinning to 3 keeps only SP3D.
        let solid = mixed.clone().dims([3]);
        assert_eq!(solid.len(), 1);
        assert_eq!(solid.scenarios()[0].app, AppKind::Sp3d);
        assert_eq!(solid.scenarios()[0].dim, 3);
        // A dims pin survives a later .apps call: builder order must not
        // silently widen an explicit filter.
        let pinned_first = CampaignSpec::new(TraceGenConfig::smoke())
            .dims([2])
            .apps([AppKind::Tp2d, AppKind::Sp3d])
            .nprocs([4]);
        assert_eq!(pinned_first.dims, vec![2]);
        assert_eq!(pinned_first.len(), 1);
    }

    #[test]
    fn mixed_dimension_campaign_runs_both_workload_families() {
        let spec = CampaignSpec::new(TraceGenConfig {
            base_cells: 16,
            steps: 4,
            ..TraceGenConfig::smoke()
        })
        .apps([AppKind::Tp2d, AppKind::Sp3d])
        .nprocs([4]);
        let outcomes = Campaign::run(&spec);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].scenario.dim, 2);
        assert_eq!(outcomes[1].scenario.dim, 3);
        for o in &outcomes {
            assert!(o.sim.total_time > 0.0);
            assert_eq!(o.sim.steps.len(), o.model.len());
        }
    }

    #[test]
    fn colliding_slugs_get_distinct_artifact_names() {
        use samr_partition::{HybridParams, PartitionerChoice};
        // Two hybrid configurations share the "hybrid" slug (the second
        // is not a named registry preset); artifacts must not silently
        // overwrite each other.
        let spec = CampaignSpec::new(TraceGenConfig::smoke())
            .apps([AppKind::Tp2d])
            .partitioners([
                PartitionerSpec::Static(PartitionerChoice::hybrid()),
                PartitionerSpec::Static(PartitionerChoice::Hybrid(HybridParams {
                    hue_blocks_per_proc: 3,
                    ..HybridParams::default()
                })),
            ])
            .nprocs([4]);
        let dir = std::env::temp_dir().join(format!("samr-engine-slugs-{}", std::process::id()));
        let (outcomes, paths) = Campaign::run_to_dir(&spec, &dir).unwrap();
        assert_eq!(outcomes.len(), 2);
        let names: Vec<String> = paths
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert!(names.contains(&"tp2d_hybrid_p4_g1.csv".to_string()));
        assert!(
            names.contains(&"tp2d_hybrid_p4_g1-2.csv".to_string()),
            "{names:?}"
        );
        for p in &paths {
            assert!(p.exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = CampaignSpec::new(TraceGenConfig::smoke()).nprocs([4, 32]);
        let json = serde_json::to_string(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn machine_axis_expands_and_tags_slugs() {
        let spec = CampaignSpec::new(TraceGenConfig::smoke())
            .apps([AppKind::Tp2d])
            .nprocs([4])
            .machines([
                MachineModel::default(),
                MachineModel::slow_network(),
                MachineModel::slow_network(), // duplicates dropped
                MachineModel::slow_cpu(),
            ]);
        assert_eq!(spec.machines.len(), 3);
        assert_eq!(spec.len(), 3);
        let slugs: Vec<String> = spec.scenarios().iter().map(Scenario::slug).collect();
        assert_eq!(
            slugs,
            vec![
                "tp2d_hybrid_p4_g1",
                "tp2d_hybrid_p4_g1_mslow-net",
                "tp2d_hybrid_p4_g1_mslow-cpu",
            ]
        );
        // The sweep actually runs under each machine, and slower
        // machines cost more estimated time.
        let outcomes = Campaign::run(&spec);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[1].sim.total_time > outcomes[0].sim.total_time);
    }
}
