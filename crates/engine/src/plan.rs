//! Campaign planning: the *what to run* half of campaign execution.
//!
//! A [`CampaignPlan`] is the deterministic, serializable expansion of a
//! [`CampaignSpec`]: the ordered scenario list with stable per-campaign
//! scenario IDs, globally unique artifact slugs (slug collisions are
//! suffixed at plan time, in plan order, so every executor — in-process,
//! sharded, multi-process — names artifacts identically), a shard
//! assignment per scenario, and a content hash over the spec and the
//! expansion. Executors ([`crate::exec`]) consume plans; the merger
//! ([`crate::merge`]) uses the plan hash and the ID space to prove a set
//! of shard artifact directories reassembles exactly this plan.
//!
//! The plan hash deliberately excludes the shard count and strategy:
//! splitting the same spec 1-way, 3-way round-robin or 5-way size-aware
//! yields the same hash, so a merged sharded campaign is provably the
//! same campaign as the unsharded run.

use crate::campaign::CampaignSpec;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How the planner distributes scenarios across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardStrategy {
    /// Scenario `id` goes to shard `id % nshards`: trivially
    /// deterministic and well-mixed across the cartesian axes.
    #[default]
    RoundRobin,
    /// Greedy balance by estimated scenario cost: scenarios are walked
    /// in plan order and each goes to the currently lightest shard
    /// (ties to the lowest shard index), so shards finish together even
    /// when the axes mix cheap smoke scenarios with heavy 3-D or
    /// stateful-selector ones. Deterministic for a given plan.
    SizeAware,
}

impl ShardStrategy {
    /// Parse a strategy from its CLI name (`round-robin` or
    /// `size-aware`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "round-robin" => Ok(Self::RoundRobin),
            "size-aware" => Ok(Self::SizeAware),
            other => Err(format!(
                "unknown shard strategy '{other}' (expected round-robin or size-aware)"
            )),
        }
    }

    /// The CLI name of the strategy.
    pub fn name(&self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::SizeAware => "size-aware",
        }
    }
}

/// One scenario of a plan: the scenario description plus everything the
/// plan decided about it — its stable ID (the plan-order index), its
/// globally unique artifact slug and the shard it runs on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlannedScenario {
    /// Stable scenario ID: the index in plan order. IDs are the merge
    /// currency — a valid shard set covers every ID exactly once.
    pub id: usize,
    /// Unique artifact slug: the scenario slug, suffixed `-2`, `-3`, …
    /// in plan order when two scenarios (e.g. same-family partitioners
    /// with different unnamed parameters) would collide.
    pub slug: String,
    /// The shard this scenario is assigned to (`0..nshards`).
    pub shard: usize,
    /// The fully described scenario.
    pub scenario: Scenario,
}

/// The deterministic, serializable expansion of a campaign spec — see
/// the [module docs](self).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignPlan {
    /// The spec this plan expands (carried so shard manifests and the
    /// campaign manifest can reproduce the campaign from artifacts
    /// alone).
    pub spec: CampaignSpec,
    /// Content hash over the spec and the expanded slug list (hex
    /// FNV-1a); independent of `nshards` and `strategy`.
    pub plan_hash: String,
    /// Number of shards the plan is split into (≥ 1).
    pub nshards: usize,
    /// The strategy that produced the shard assignment.
    pub strategy: ShardStrategy,
    /// Every scenario, in plan order (`scenarios[i].id == i`).
    pub scenarios: Vec<PlannedScenario>,
}

impl CampaignPlan {
    /// Expand a spec into a plan split `nshards` ways (`0` is treated
    /// as `1`).
    pub fn new(spec: &CampaignSpec, nshards: usize, strategy: ShardStrategy) -> Self {
        let nshards = nshards.max(1);
        let scenarios = spec.scenarios();
        let slugs = unique_slugs(&scenarios);
        let shards = assign_shards(&scenarios, nshards, strategy);
        let plan_hash = plan_hash(spec, &slugs);
        let scenarios = scenarios
            .into_iter()
            .zip(slugs)
            .zip(shards)
            .enumerate()
            .map(|(id, ((scenario, slug), shard))| PlannedScenario {
                id,
                slug,
                shard,
                scenario,
            })
            .collect();
        Self {
            spec: spec.clone(),
            plan_hash,
            nshards,
            strategy,
            scenarios,
        }
    }

    /// Number of scenarios in the plan.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` when the plan has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The scenarios assigned to one shard, in plan order.
    pub fn shard_scenarios(&self, shard: usize) -> Vec<&PlannedScenario> {
        self.scenarios.iter().filter(|p| p.shard == shard).collect()
    }
}

/// Assign each scenario slug its globally unique artifact name:
/// first occurrence keeps the bare slug, repeats get `-2`, `-3`, … in
/// plan order (the suffixing `Campaign::run_to_dir` used to apply at
/// write time, now decided once so every executor agrees).
fn unique_slugs(scenarios: &[Scenario]) -> Vec<String> {
    let mut used: HashMap<String, usize> = HashMap::new();
    scenarios
        .iter()
        .map(|s| {
            let base = s.slug();
            let n = used.entry(base.clone()).or_insert(0);
            *n += 1;
            if *n == 1 {
                base
            } else {
                format!("{base}-{n}")
            }
        })
        .collect()
}

/// Rough relative cost of simulating one scenario, for size-aware
/// sharding: snapshots to stream × cells per base grid, doubled for
/// stateful selectors and non-static policies (both strictly
/// sequential, no snapshot parallelism). Only ratios matter — the
/// estimate steers balance, not correctness.
fn scenario_weight(s: &Scenario) -> u128 {
    let cells = (s.trace.base_cells.max(1) as u128).pow(s.dim as u32);
    let steps = s.trace.steps.max(1) as u128;
    let sequential = s.partitioner.stateful() || !s.policy.is_static();
    steps * cells * if sequential { 2 } else { 1 }
}

fn assign_shards(scenarios: &[Scenario], nshards: usize, strategy: ShardStrategy) -> Vec<usize> {
    match strategy {
        ShardStrategy::RoundRobin => (0..scenarios.len()).map(|id| id % nshards).collect(),
        ShardStrategy::SizeAware => {
            let mut load = vec![0u128; nshards];
            scenarios
                .iter()
                .map(|s| {
                    let shard = load
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, &l)| (l, *i))
                        .map(|(i, _)| i)
                        .expect("nshards >= 1");
                    load[shard] += scenario_weight(s);
                    shard
                })
                .collect()
        }
    }
}

/// FNV-1a over a sequence of byte chunks, rendered as 16 hex digits —
/// the one digest the engine uses for plan hashes, completion-record
/// artifact digests ([`crate::resume`]) and spill-file names
/// ([`crate::store`]). Chunk boundaries do not affect the hash; only
/// the concatenated byte stream does.
pub(crate) fn fnv1a_hex<'a>(chunks: impl IntoIterator<Item = &'a [u8]>) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// FNV-1a over the serialized spec and the expanded slug list: stable
/// across processes and builds of the same spec, sensitive to any axis
/// or expansion change.
fn plan_hash(spec: &CampaignSpec, slugs: &[String]) -> String {
    let spec_json = serde_json::to_string(spec).expect("CampaignSpec serializes");
    let mut chunks: Vec<&[u8]> = Vec::with_capacity(1 + 2 * slugs.len());
    chunks.push(spec_json.as_bytes());
    for slug in slugs {
        chunks.push(slug.as_bytes());
        chunks.push(b"\n");
    }
    fnv1a_hex(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PartitionerSpec;
    use samr_apps::{AppKind, TraceGenConfig};
    use samr_partition::{HybridParams, PartitionerChoice};

    fn spec() -> CampaignSpec {
        CampaignSpec::new(TraceGenConfig::smoke())
            .apps([AppKind::Tp2d, AppKind::Sc2d])
            .partitioners([
                PartitionerSpec::parse("hybrid").unwrap(),
                PartitionerSpec::parse("domain-sfc").unwrap(),
            ])
            .nprocs([4, 8])
    }

    #[test]
    fn plan_is_deterministic_and_ids_are_plan_order() {
        let a = CampaignPlan::new(&spec(), 3, ShardStrategy::RoundRobin);
        let b = CampaignPlan::new(&spec(), 3, ShardStrategy::RoundRobin);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        for (i, p) in a.scenarios.iter().enumerate() {
            assert_eq!(p.id, i);
        }
    }

    #[test]
    fn plan_hash_is_shard_invariant_but_spec_sensitive() {
        let one = CampaignPlan::new(&spec(), 1, ShardStrategy::RoundRobin);
        let three = CampaignPlan::new(&spec(), 3, ShardStrategy::RoundRobin);
        let sized = CampaignPlan::new(&spec(), 5, ShardStrategy::SizeAware);
        assert_eq!(one.plan_hash, three.plan_hash);
        assert_eq!(one.plan_hash, sized.plan_hash);
        let other = CampaignPlan::new(&spec().nprocs([4]), 1, ShardStrategy::RoundRobin);
        assert_ne!(one.plan_hash, other.plan_hash);
    }

    #[test]
    fn round_robin_interleaves_by_id() {
        let plan = CampaignPlan::new(&spec(), 3, ShardStrategy::RoundRobin);
        for p in &plan.scenarios {
            assert_eq!(p.shard, p.id % 3);
        }
        // Every shard covers the plan exactly once, in order.
        let mut ids: Vec<usize> = (0..3)
            .flat_map(|s| {
                plan.shard_scenarios(s)
                    .iter()
                    .map(|p| p.id)
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..plan.len()).collect::<Vec<_>>());
    }

    #[test]
    fn size_aware_balances_and_stays_deterministic() {
        let mixed = CampaignSpec::new(TraceGenConfig::smoke())
            .apps([AppKind::Tp2d, AppKind::Sp3d])
            .partitioners([
                PartitionerSpec::parse("hybrid").unwrap(),
                PartitionerSpec::Meta,
            ])
            .nprocs([4, 8]);
        let a = CampaignPlan::new(&mixed, 3, ShardStrategy::SizeAware);
        let b = CampaignPlan::new(&mixed, 3, ShardStrategy::SizeAware);
        assert_eq!(a, b);
        // Every scenario lands on exactly one valid shard, and with 8
        // scenarios over 3 shards none is empty.
        for p in &a.scenarios {
            assert!(p.shard < 3);
        }
        for shard in 0..3 {
            assert!(!a.shard_scenarios(shard).is_empty());
        }
    }

    #[test]
    fn colliding_slugs_are_suffixed_in_plan_order() {
        let spec = CampaignSpec::new(TraceGenConfig::smoke())
            .apps([AppKind::Tp2d])
            .partitioners([
                PartitionerSpec::Static(PartitionerChoice::hybrid()),
                PartitionerSpec::Static(PartitionerChoice::Hybrid(HybridParams {
                    hue_blocks_per_proc: 3,
                    ..HybridParams::default()
                })),
            ])
            .nprocs([4]);
        let plan = CampaignPlan::new(&spec, 1, ShardStrategy::RoundRobin);
        let slugs: Vec<&str> = plan.scenarios.iter().map(|p| p.slug.as_str()).collect();
        assert_eq!(slugs, vec!["tp2d_hybrid_p4_g1", "tp2d_hybrid_p4_g1-2"]);
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = CampaignPlan::new(&spec(), 3, ShardStrategy::SizeAware);
        let json = serde_json::to_string(&plan).unwrap();
        let back: CampaignPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn zero_shards_is_one_shard() {
        let plan = CampaignPlan::new(&spec(), 0, ShardStrategy::RoundRobin);
        assert_eq!(plan.nshards, 1);
        assert!(plan.scenarios.iter().all(|p| p.shard == 0));
    }

    #[test]
    fn strategy_names_roundtrip() {
        for s in [ShardStrategy::RoundRobin, ShardStrategy::SizeAware] {
            assert_eq!(ShardStrategy::parse(s.name()).unwrap(), s);
        }
        assert!(ShardStrategy::parse("hash").is_err());
    }
}
