//! Figure regeneration: the paper's §5.1 validation bundle, assembled
//! from campaign scenario outcomes.
//!
//! One [`ValidationRun`] bundles everything a data figure needs: the
//! model series (β_c, β_m — the red curves of Figures 4–7), the measured
//! series from the partitioned execution simulation (relative
//! communication and migration — the blue curves), the load-imbalance
//! series (Figure 1) and the *shape statistics* the paper's visual
//! comparison corresponds to (correlations, amplitude ratios, peak lags,
//! dominant oscillation periods). The examples, integration tests and
//! criterion benches all consume this type, so all three report the same
//! numbers — and all of them are now thin wrappers over the campaign
//! engine rather than hand-wired pipelines.

use crate::scenario::{run_on_trace, Scenario, ScenarioOutcome};
use crate::spec::PartitionerSpec;
use crate::store::{cached_model, cached_trace};
use samr_apps::{AppKind, TraceGenConfig};
use samr_core::{ModelPipeline, ModelState};
use samr_partition::PartitionerChoice;
use samr_sim::metrics::{dominant_period, peak_lag, pearson};
use samr_sim::{SeriesSummary, SimConfig, SimResult};
use samr_trace::HierarchyTrace;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Shape statistics comparing a model series against a measured series —
/// the quantitative version of the paper's visual §5.2 assessment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ShapeStats {
    /// Pearson correlation between model and measurement.
    pub correlation: f64,
    /// `mean(model) / mean(measured)`: > 1 means the model is
    /// "aggressive" (overshoots), < 1 "cautious". `None` when the
    /// measured series is identically zero (degenerate scenarios such
    /// as a single processor): the ratio is undefined there, and an
    /// explicit `None` round-trips through JSON artifacts where a
    /// non-finite float would not.
    pub amplitude_ratio: Option<f64>,
    /// Lag (steps) at which cross-correlation peaks; positive = the model
    /// *leads* the measurement.
    pub model_lead: i64,
    /// Dominant oscillation period of the model series, if any.
    pub model_period: Option<usize>,
    /// Dominant oscillation period of the measured series, if any.
    pub measured_period: Option<usize>,
}

impl ShapeStats {
    /// Compare a model series against a measurement.
    pub fn compare(model: &[f64], measured: &[f64]) -> Self {
        let m_mean = SeriesSummary::of(measured).mean;
        Self {
            correlation: pearson(model, measured),
            amplitude_ratio: (m_mean > 0.0).then(|| SeriesSummary::of(model).mean / m_mean),
            model_lead: peak_lag(model, measured, 4),
            model_period: dominant_period(model),
            measured_period: dominant_period(measured),
        }
    }

    /// The amplitude ratio as a plain float for display and comparison:
    /// an undefined ratio (flat-zero measurement) reads as `+inf`, since
    /// any nonzero model mean overshoots a zero measurement.
    pub fn amplitude(&self) -> f64 {
        self.amplitude_ratio.unwrap_or(f64::INFINITY)
    }
}

/// The two scenarios a validation figure compares: the static neutral
/// hybrid set-up of §5.1.2 and the clean domain-based run.
fn figure_specs() -> [PartitionerSpec; 2] {
    [
        PartitionerSpec::Static(PartitionerChoice::hybrid()),
        PartitionerSpec::Static(PartitionerChoice::domain_sfc()),
    ]
}

/// Everything needed to regenerate one of Figures 4–7 (plus Figure 1's
/// series for BL2D): per-step model and measurement series and their
/// shape statistics.
pub struct ValidationRun {
    /// Which application kernel.
    pub app: AppKind,
    /// Per-step model states (β_l, β_c, β_m, classification points).
    pub model: Arc<Vec<ModelState>>,
    /// Simulation result under the static neutral hybrid set-up (§5.1.2).
    pub sim: SimResult,
    /// Secondary simulation under the clean domain-based SFC partitioner —
    /// the paper's contribution (5), "complementary communication results
    /// for dimension I using the new metric". The domain-based run has no
    /// partial-ordering noise, so it isolates how well β_c tracks the
    /// grid's inherent communication need.
    pub sim_domain: SimResult,
    /// Shape statistics: β_c vs. actual relative communication (left
    /// panel, hybrid partitioner as in the paper's figures).
    pub comm_shape: ShapeStats,
    /// Shape statistics: β_c vs. the domain-based run's communication
    /// (complementary dimension-I results).
    pub comm_shape_domain: ShapeStats,
    /// Shape statistics: β_m vs. actual relative migration (right panel).
    pub migration_shape: ShapeStats,
}

impl ValidationRun {
    /// Run the full §5.1 pipeline for one application through the
    /// campaign engine: the hybrid and domain-based scenarios over the
    /// shared cached trace.
    pub fn execute(app: AppKind, cfg: &TraceGenConfig, sim_cfg: &SimConfig) -> Self {
        let trace = cached_trace(app, cfg);
        let model = cached_model(app, cfg);
        let trace2 = trace
            .as_2d()
            .expect("validation figures reproduce the paper's 2-D applications");
        Self::from_parts(app, cfg, trace2, model, sim_cfg)
    }

    /// Same, from an already generated trace (used by the benches, whose
    /// traces live in the shared store under the bench configuration).
    pub fn from_trace(app: AppKind, trace: &HierarchyTrace<2>, sim_cfg: &SimConfig) -> Self {
        let model = Arc::new(ModelPipeline::new().run(trace));
        // The trace is explicit, so the scenario's trace config is
        // documentary; record the paper configuration it derives from.
        Self::from_parts(app, &TraceGenConfig::paper(), trace, model, sim_cfg)
    }

    fn from_parts(
        app: AppKind,
        cfg: &TraceGenConfig,
        trace: &HierarchyTrace<2>,
        model: Arc<Vec<ModelState>>,
        sim_cfg: &SimConfig,
    ) -> Self {
        let [hybrid_spec, domain_spec] = figure_specs();
        let scenario =
            |partitioner: PartitionerSpec| Scenario::new(app, cfg.clone(), partitioner, *sim_cfg);
        let hybrid = run_on_trace(&scenario(hybrid_spec), trace, Arc::clone(&model));
        let domain = run_on_trace(&scenario(domain_spec), trace, model);
        Self::from_outcomes(hybrid, domain)
    }

    /// Assemble a figure bundle from the two scenario outcomes a figure
    /// compares (hybrid panel + domain-based complement). Both outcomes
    /// must come from the same application trace.
    pub fn from_outcomes(hybrid: ScenarioOutcome, domain: ScenarioOutcome) -> Self {
        assert_eq!(
            hybrid.scenario.app, domain.scenario.app,
            "figure outcomes must share an application"
        );
        let model = hybrid.model;
        let beta_c: Vec<f64> = model.iter().skip(1).map(|s| s.beta_c).collect();
        let rel_comm_dom: Vec<f64> = domain
            .sim
            .steps
            .iter()
            .skip(1)
            .map(|s| s.rel_comm)
            .collect();
        Self {
            app: hybrid.scenario.app,
            comm_shape: hybrid.comm_shape,
            comm_shape_domain: ShapeStats::compare(&beta_c, &rel_comm_dom),
            migration_shape: hybrid.migration_shape,
            sim: hybrid.sim,
            sim_domain: domain.sim,
            model,
        }
    }

    /// The figure number this run reproduces (paper order: RM2D=4,
    /// BL2D=5, SC2D=6, TP2D=7).
    pub fn figure_number(&self) -> u32 {
        match self.app {
            AppKind::Rm2d => 4,
            AppKind::Bl2d => 5,
            AppKind::Sc2d => 6,
            AppKind::Tp2d => 7,
            AppKind::Pc2d | AppKind::Sp3d => {
                unreachable!("only the paper's four 2-D kernels have figures")
            }
        }
    }

    /// Render the figure data as CSV: one row per step with both panels'
    /// series (plus load imbalance, which Figure 1 uses).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "step,beta_l,beta_c,beta_m,rel_comm,rel_comm_domain,rel_migration,load_imbalance,total_points\n",
        );
        for ((m, s), sd) in self
            .model
            .iter()
            .zip(&self.sim.steps)
            .zip(&self.sim_domain.steps)
        {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
                m.step,
                m.beta_l,
                m.beta_c,
                m.beta_m,
                s.rel_comm,
                sd.rel_comm,
                s.rel_migration,
                s.load_imbalance,
                s.total_points
            ));
        }
        out
    }

    /// One-paragraph textual summary of the shape comparison (printed by
    /// the examples and recorded in EXPERIMENTS.md).
    pub fn summary(&self) -> String {
        format!(
            "Figure {} ({}): comm[hybrid] r={:.3} amp={:.2} lead={}; comm[domain] r={:.3} amp={:.2}; migration r={:.3} amp={:.2} lead={}; periods model/measured comm {:?}/{:?} mig {:?}/{:?}",
            self.figure_number(),
            self.app.name(),
            self.comm_shape.correlation,
            self.comm_shape.amplitude(),
            self.comm_shape.model_lead,
            self.comm_shape_domain.correlation,
            self.comm_shape_domain.amplitude(),
            self.migration_shape.correlation,
            self.migration_shape.amplitude(),
            self.migration_shape.model_lead,
            self.comm_shape.model_period,
            self.comm_shape.measured_period,
            self.migration_shape.model_period,
            self.migration_shape.measured_period,
        )
    }

    /// Regenerate all four validation figures (4–7) as one campaign:
    /// apps × {hybrid, domain-sfc} over the shared cached traces, zipped
    /// into per-figure bundles in paper order.
    pub fn all_figures(cfg: &TraceGenConfig, sim_cfg: &SimConfig) -> Vec<ValidationRun> {
        let spec = crate::campaign::CampaignSpec {
            apps: AppKind::ALL.to_vec(),
            dims: vec![2],
            partitioners: figure_specs().to_vec(),
            nprocs: vec![sim_cfg.nprocs],
            ghost_widths: vec![sim_cfg.ghost_width],
            trace: cfg.clone(),
            machines: vec![sim_cfg.machine],
            reuse_unchanged: sim_cfg.reuse_unchanged,
            policies: vec![crate::policy::PolicySpec::Static],
        };
        let outcomes = crate::campaign::Campaign::run(&spec);
        // Scenario order is app-major with the hybrid spec first.
        outcomes
            .chunks_exact(2)
            .map(|pair| Self::from_outcomes(pair[0].clone(), pair[1].clone()))
            .collect()
    }
}

/// The standard experiment configurations.
pub mod configs {
    use super::*;

    /// The paper's full §5.1.1 configuration.
    pub fn paper() -> TraceGenConfig {
        TraceGenConfig::paper()
    }

    /// Reduced configuration for CI-speed integration tests: the same
    /// pipeline and regrid schedule, smaller grids, 40 steps, 4 levels.
    pub fn reduced() -> TraceGenConfig {
        TraceGenConfig {
            steps: 40,
            base_cells: 48,
            max_levels: 4,
            ref_resolution: 96,
            ..TraceGenConfig::paper()
        }
    }

    /// The paper-faithful simulation configuration (16 processors).
    pub fn sim() -> SimConfig {
        SimConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_stats_of_identical_series_are_perfect() {
        let s: Vec<f64> = (0..32).map(|i| ((i as f64) * 0.7).sin().abs()).collect();
        let stats = ShapeStats::compare(&s, &s);
        assert!((stats.correlation - 1.0).abs() < 1e-9);
        assert!((stats.amplitude() - 1.0).abs() < 1e-9);
        assert_eq!(stats.model_lead, 0);
    }

    #[test]
    fn validation_run_via_campaign_is_consistent() {
        let cfg = TraceGenConfig::smoke();
        let sim_cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let run = ValidationRun::execute(AppKind::Tp2d, &cfg, &sim_cfg);
        assert_eq!(run.model.len(), run.sim.steps.len());
        assert_eq!(run.model.len(), run.sim_domain.steps.len());
        assert_eq!(run.figure_number(), 7);
        assert!(run.to_csv().lines().count() == run.model.len() + 1);
    }

    #[test]
    fn all_figures_covers_the_four_apps_in_paper_order() {
        let cfg = TraceGenConfig::smoke();
        let sim_cfg = SimConfig {
            nprocs: 4,
            ..SimConfig::default()
        };
        let runs = ValidationRun::all_figures(&cfg, &sim_cfg);
        let figures: Vec<u32> = runs.iter().map(ValidationRun::figure_number).collect();
        assert_eq!(figures, vec![4, 5, 6, 7]);
    }
}
