//! # samr-engine — the campaign engine
//!
//! The paper's contribution is a *pipeline*: application trace → penalty
//! model → partitioner selection → execution simulation. Before this
//! crate existed, that wiring was copy-pasted across the facade's
//! experiment harness, six examples, four criterion benches and the
//! `samr` CLI, each hard-coding one (app × partitioner × nprocs)
//! combination. `samr-engine` makes the sweep itself a first-class,
//! composable, statically described artifact:
//!
//! - [`Scenario`]: one fully described pipeline run — application kind,
//!   trace configuration, partitioner specification and simulation
//!   configuration — with serde round-tripping, so a scenario can be
//!   stored, diffed and reproduced from its JSON description alone;
//! - [`PartitionerSpec`]: the registry naming every configured
//!   partitioner family (static choices via
//!   [`samr_partition::PartitionerChoice`], plus the adaptive
//!   meta-partitioner and the octant baseline), shared by the selector,
//!   the benches and the CLI instead of three ad-hoc match blocks;
//! - [`PolicySpec`]: the repartitioning-policy registry — static
//!   assignment versus adaptive mid-run switching
//!   ([`samr_meta::AdaptivePolicy`]) — swept as a first-class campaign
//!   axis orthogonal to the partitioner axis;
//! - [`Campaign`]: the plan → execute → merge front end over cartesian
//!   sweeps (apps × partitioners × policies × processor counts × ghost
//!   widths × machines). The [`plan`] layer expands a [`CampaignSpec`] into a
//!   deterministic, serializable [`CampaignPlan`] (stable scenario IDs,
//!   globally unique artifact slugs, shard assignment via
//!   [`ShardStrategy`]); the [`exec`] layer runs it behind the
//!   [`CampaignExecutor`] trait (in-process rayon, one-shard
//!   [`ShardExecutor`], multi-process [`WorkerExecutor`]); the [`merge`]
//!   layer validates shard manifests and reassembles the canonical
//!   campaign artifacts, byte-identical to the unsharded run;
//! - [`ValidationRun`]: the paper's §5.1 figure-regeneration bundle
//!   (Figures 4–7), now assembled from campaign scenario outcomes;
//! - [`store`]: the process-wide trace/model cache, keyed by the **full**
//!   trace configuration (the facade's old cache omitted `max_levels`
//!   and the clustering options from its key, so two configurations
//!   differing only there collided and returned the wrong trace). Its
//!   [`cached_source`] path is the streaming default scenarios run
//!   through: traces are generated straight to disk and served as
//!   bounded-memory snapshot streams whenever the in-memory byte budget
//!   ([`store::trace_cache_budget`]) would be exceeded.
//!
//! Every future scaling experiment — more applications, more partitioner
//! configurations, more execution backends — plugs into the plan /
//! execute / merge layers rather than re-wiring the pipeline by hand:
//! *what to run* (the plan) is fixed and serializable, *where and how it
//! runs* (the executor) is pluggable, and the merger proves the pieces
//! reassemble the exact campaign that was planned.
//!
//! ## Example
//!
//! ```
//! use samr_engine::{Campaign, CampaignSpec, PartitionerSpec};
//! use samr_apps::{AppKind, TraceGenConfig};
//!
//! let spec = CampaignSpec::new(TraceGenConfig::smoke())
//!     .apps([AppKind::Bl2d])
//!     .partitioners([PartitionerSpec::parse("hybrid").unwrap()])
//!     .nprocs([4]);
//! let outcomes = Campaign::run(&spec);
//! assert_eq!(outcomes.len(), 1);
//! assert!(outcomes[0].to_csv().lines().count() > 1);
//! ```

#![warn(missing_docs)]

pub mod atomic;
pub mod campaign;
pub mod exec;
pub mod merge;
pub mod pareto;
pub mod plan;
pub mod policy;
pub mod resume;
pub mod scenario;
pub mod spec;
pub mod store;
pub mod validation;

pub use atomic::atomic_write;
pub use campaign::{Campaign, CampaignRun, CampaignSpec};
pub use exec::{
    build_thread_pool, shard_dir_name, CampaignExecutor, ExecError, ExecOutput, RayonExecutor,
    ShardExecutor, ShardRun, WorkerExecutor,
};
pub use merge::{
    find_shard_dirs, merge_shards, CampaignManifest, MergeError, MergeReport, ShardManifest,
};
pub use pareto::{
    compute_front, front_for_dir, parse_objectives, read_front, write_front, Objective,
    ParetoEntry, ParetoError, ParetoFront, ParetoPoint, CAMPAIGN_PARETO,
};
pub use plan::{CampaignPlan, PlannedScenario, ShardStrategy};
pub use policy::PolicySpec;
pub use resume::{Completion, CompletionRecord};
pub use scenario::{Scenario, ScenarioOutcome, ScenarioSummary};
pub use spec::PartitionerSpec;
pub use store::{cached_model, cached_source, cached_trace, set_trace_cache_budget};
pub use validation::{configs, ShapeStats, ValidationRun};
