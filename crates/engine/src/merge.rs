//! Shard manifest schema and the campaign merger: proving a set of
//! shard artifact directories reassembles exactly one campaign plan,
//! then merging them into the canonical campaign artifacts.
//!
//! Every shard directory carries a [`ShardManifest`] recording which
//! plan it belongs to (the plan hash), which slice of the ID space it
//! covered, and the spec needed to reproduce the campaign.
//! [`merge_shards`] validates the set — same plan hash everywhere, all
//! shard indices present exactly once, every scenario ID covered
//! exactly once, every artifact pair stamped by a completion record
//! that matches the bytes on disk — and only then copies the
//! per-scenario CSV/JSON artifacts into the campaign directory in plan
//! order, rebuilding the canonical `campaign.csv` and writing the audit
//! [`CampaignManifest`]. A merged sharded campaign is therefore
//! byte-identical to the unsharded run of the same spec, and a stale,
//! foreign or incomplete shard set is rejected with a precise error
//! instead of producing a silently wrong merge.
//!
//! The merger is *salvage-aware*: a shard that crashed mid-run (no
//! manifest yet, or listed artifacts missing their completion stamp) is
//! reported as [`MergeError::ShardIncomplete`] with the exact `samr
//! campaign … --resume` invocation that finishes it, while bytes that
//! disagree with their completion record are reported as genuine
//! [`MergeError::CorruptArtifact`] corruption — the two failure classes
//! an operator handles very differently.

use crate::atomic::atomic_write;
use crate::campaign::CampaignSpec;
use crate::plan::ShardStrategy;
use crate::resume::{Completion, CompletionRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of the per-shard manifest inside a shard directory.
pub const SHARD_MANIFEST: &str = "shard.manifest.json";

/// File name of the campaign audit manifest written next to the
/// campaign CSV.
pub const CAMPAIGN_MANIFEST: &str = "campaign.manifest.json";

/// File name of the canonical concatenated campaign CSV.
pub const CAMPAIGN_CSV: &str = "campaign.csv";

/// One scenario as recorded in a shard manifest: its plan ID and the
/// artifact slug its CSV/JSON files are named by.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Stable plan-order scenario ID.
    pub id: usize,
    /// Artifact slug (`<slug>.csv` / `<slug>.json` in the shard dir).
    pub slug: String,
}

/// The self-description a shard executor writes next to its artifacts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Hash of the plan this shard belongs to.
    pub plan_hash: String,
    /// This shard's index (`0..nshards`).
    pub shard: usize,
    /// How many shards the plan was split into.
    pub nshards: usize,
    /// Scenario count of the *whole* plan (the merge's ID space).
    pub total_scenarios: usize,
    /// The shard-assignment strategy the plan used. The plan hash is
    /// deliberately strategy-invariant, so this is recorded separately:
    /// shards assigned under different strategies cover different ID
    /// slices and must be rejected by name, not as ID corruption.
    pub strategy: ShardStrategy,
    /// Wall-clock seconds this shard's execution took.
    pub elapsed_seconds: f64,
    /// The campaign spec, so a merged campaign is reproducible from
    /// its artifacts alone.
    pub spec: CampaignSpec,
    /// The scenarios this shard executed, in plan order.
    pub scenarios: Vec<ManifestEntry>,
}

impl ShardManifest {
    /// Write the manifest into its shard directory — atomically, and by
    /// convention *after* every artifact and completion record, so the
    /// manifest's presence means the shard finished.
    pub fn write(&self, shard_dir: &Path) -> std::io::Result<PathBuf> {
        let path = shard_dir.join(SHARD_MANIFEST);
        let json = serde_json::to_string_pretty(self).expect("ShardManifest serializes");
        atomic_write(&path, json.as_bytes())?;
        Ok(path)
    }

    /// Read the manifest of a shard directory. A missing manifest in a
    /// directory *named* like a shard (`shard-<i>-of-<n>`) means the
    /// shard was killed before finishing — the executor creates the
    /// directory first and writes the manifest last, so even an empty
    /// one is the wreckage of a kill before the first scenario landed —
    /// and is reported as resumable [`MergeError::ShardIncomplete`],
    /// not as "not a shard directory".
    pub fn read(shard_dir: &Path) -> Result<Self, MergeError> {
        let path = shard_dir.join(SHARD_MANIFEST);
        let json = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() != std::io::ErrorKind::NotFound {
                return MergeError::Io(path.clone(), e);
            }
            match parse_shard_dir_name(shard_dir) {
                Some((shard, nshards)) => MergeError::ShardIncomplete {
                    dir: shard_dir.to_path_buf(),
                    shard,
                    nshards,
                    missing: vec![format!("{SHARD_MANIFEST} (shard killed mid-run)")],
                    // The killed shard cannot say which --shard-strategy
                    // it ran under, but a surviving sibling's manifest
                    // can — and the rerun command must carry it, or a
                    // non-default-strategy shard would be re-executed
                    // over the wrong scenario slice.
                    rerun: rerun_command(
                        shard_dir,
                        shard,
                        nshards,
                        sibling_strategy(shard_dir, nshards),
                    ),
                },
                None => MergeError::MissingManifest(shard_dir.to_path_buf()),
            }
        })?;
        serde_json::from_str(&json).map_err(|e| MergeError::BadManifest(path, e.to_string()))
    }
}

/// The audit manifest written next to every campaign CSV: what was
/// run, under which plan, how large it was and how long it took — so
/// merged (and unsharded) campaigns are auditable and reproducible
/// from the artifact directory alone.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Hash of the executed plan.
    pub plan_hash: String,
    /// Number of scenarios in the campaign.
    pub scenario_count: usize,
    /// How many shards produced the artifacts (`1` for the in-process
    /// path).
    pub shards: usize,
    /// Wall-clock seconds of execution (summed across shards for a
    /// merged campaign).
    pub elapsed_seconds: f64,
    /// The campaign spec the plan expanded.
    pub spec: CampaignSpec,
}

impl CampaignManifest {
    /// Write the manifest into the campaign directory (atomically).
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(CAMPAIGN_MANIFEST);
        let json = serde_json::to_string_pretty(self).expect("CampaignManifest serializes");
        atomic_write(&path, json.as_bytes())?;
        Ok(path)
    }
}

/// Why a shard set cannot be merged.
#[derive(Debug)]
pub enum MergeError {
    /// No shard directories were given (or discovered).
    NoShards,
    /// A directory has no `shard.manifest.json` and no sign of shard
    /// execution (not a shard directory at all).
    MissingManifest(PathBuf),
    /// A manifest exists but does not parse.
    BadManifest(PathBuf, String),
    /// A shard belongs to a different plan than the first shard read.
    PlanHashMismatch {
        /// Hash the first shard declared.
        expected: String,
        /// Hash the offending shard declared.
        found: String,
        /// The offending shard directory.
        dir: PathBuf,
    },
    /// Shards were assigned under different `--shard-strategy` values,
    /// so they cover different slices of the ID space.
    StrategyMismatch {
        /// Strategy the first shard declared.
        expected: ShardStrategy,
        /// Strategy the offending shard declared.
        found: ShardStrategy,
        /// The offending shard directory.
        dir: PathBuf,
    },
    /// Shards disagree about the shard count or total scenario count.
    ShapeMismatch {
        /// What the first shard declared.
        expected: String,
        /// What the offending shard declared.
        found: String,
        /// The offending shard directory.
        dir: PathBuf,
    },
    /// The same shard index appears in two directories.
    DuplicateShard {
        /// The repeated shard index.
        shard: usize,
    },
    /// Shard indices absent from the set.
    MissingShards {
        /// The absent indices.
        missing: Vec<usize>,
        /// The plan's shard count.
        nshards: usize,
    },
    /// A scenario ID is claimed by two shards.
    DuplicateScenario {
        /// The repeated scenario ID.
        id: usize,
    },
    /// Scenario IDs no shard covers (a shard ran an older plan or was
    /// truncated).
    MissingScenarios {
        /// The uncovered IDs.
        missing: Vec<usize>,
        /// The plan's scenario count.
        total: usize,
    },
    /// A shard ran but did not finish: artifacts, completion records or
    /// the manifest are missing. Not corruption — rerunning the shard
    /// with `--resume` completes exactly the missing remainder.
    ShardIncomplete {
        /// The incomplete shard directory.
        dir: PathBuf,
        /// The shard's index.
        shard: usize,
        /// The plan's shard count.
        nshards: usize,
        /// What is missing (slugs or the manifest).
        missing: Vec<String>,
        /// The exact command that finishes the shard.
        rerun: String,
    },
    /// An artifact's bytes disagree with its completion record: genuine
    /// corruption (torn copy, bit rot, manual edit), not a resumable
    /// gap.
    CorruptArtifact {
        /// The corrupt artifact (or record) path.
        path: PathBuf,
        /// Which check failed.
        detail: String,
        /// The command that regenerates the artifact from scratch.
        rerun: String,
    },
    /// A validated artifact vanished between validation and copy
    /// (concurrent deletion).
    MissingArtifact(PathBuf),
    /// A campaign directory holds shard directories from different
    /// shard counts (e.g. a stale `shard-0-of-2` next to
    /// `shard-0-of-3`), which would otherwise surface as baffling
    /// duplicate-index errors.
    MixedShardFamilies {
        /// The distinct `-of-<n>` families found, ascending.
        families: Vec<usize>,
    },
    /// Reading or writing artifacts failed.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoShards => write!(f, "no shard directories to merge"),
            Self::MissingManifest(dir) => write!(
                f,
                "{} has no {SHARD_MANIFEST} (not a shard directory?)",
                dir.display()
            ),
            Self::BadManifest(path, e) => {
                write!(f, "{} does not parse: {e}", path.display())
            }
            Self::PlanHashMismatch {
                expected,
                found,
                dir,
            } => write!(
                f,
                "{} belongs to plan {found}, other shards to plan {expected}: \
                 shards of different campaigns cannot be merged",
                dir.display()
            ),
            Self::StrategyMismatch {
                expected,
                found,
                dir,
            } => write!(
                f,
                "{} was sharded with --shard-strategy {}, other shards with {}: \
                 rerun it under the same strategy before merging",
                dir.display(),
                found.name(),
                expected.name()
            ),
            Self::ShapeMismatch {
                expected,
                found,
                dir,
            } => write!(
                f,
                "{} declares {found}, other shards {expected}",
                dir.display()
            ),
            Self::DuplicateShard { shard } => {
                write!(f, "shard {shard} appears more than once in the merge set")
            }
            Self::MissingShards { missing, nshards } => write!(
                f,
                "missing shard(s) {missing:?} of {nshards}: run the absent \
                 `samr campaign --shard i/{nshards}` invocations before merging"
            ),
            Self::DuplicateScenario { id } => {
                write!(f, "scenario id {id} is claimed by more than one shard")
            }
            Self::MissingScenarios { missing, total } => write!(
                f,
                "{} of {total} scenario ids are covered by no shard: {missing:?}",
                missing.len()
            ),
            Self::ShardIncomplete {
                dir,
                shard,
                nshards,
                missing,
                rerun,
            } => write!(
                f,
                "shard {shard}/{nshards} at {} is incomplete but resumable \
                 (missing: {}): finish it with `{rerun}` and merge again",
                dir.display(),
                missing.join(", ")
            ),
            Self::CorruptArtifact {
                path,
                detail,
                rerun,
            } => write!(
                f,
                "{} is corrupt ({detail}): the bytes on disk are not what its \
                 completion record stamped — regenerate the shard with `{rerun}`",
                path.display()
            ),
            Self::MissingArtifact(path) => write!(
                f,
                "artifact {} vanished while merging (deleted concurrently?)",
                path.display()
            ),
            Self::MixedShardFamilies { families } => write!(
                f,
                "shard directories from different shard counts coexist here \
                 (shard-*-of-{families:?}): remove the stale family (or pass the \
                 intended shard directories explicitly) before merging"
            ),
            Self::Io(path, e) => write!(f, "{}: {e}", path.display()),
        }
    }
}

impl std::error::Error for MergeError {}

/// What a successful merge produced.
#[derive(Debug)]
pub struct MergeReport {
    /// Hash of the merged plan.
    pub plan_hash: String,
    /// Scenarios merged.
    pub scenario_count: usize,
    /// Shards merged.
    pub shards: usize,
    /// Every artifact path written into the campaign directory.
    pub paths: Vec<PathBuf>,
    /// Path of the canonical concatenated campaign CSV.
    pub csv_path: PathBuf,
}

/// Assemble the canonical campaign CSV from `(slug, csv)` parts in plan
/// order: each per-scenario CSV under a `# <slug>` header. The one
/// definition of the format — both the in-process artifact writer and
/// the merger call this, so the byte-identity contract between the
/// unsharded and merged paths cannot drift.
pub(crate) fn assemble_campaign_csv<'a>(
    parts: impl IntoIterator<Item = (&'a str, &'a str)>,
) -> String {
    let mut out = String::new();
    for (slug, csv) in parts {
        out.push_str("# ");
        out.push_str(slug);
        out.push('\n');
        out.push_str(csv);
    }
    out
}

/// Parse a `shard-<i>-of-<n>` directory name into `(i, n)`.
fn parse_shard_dir_name(dir: &Path) -> Option<(usize, usize)> {
    let name = dir.file_name()?.to_str()?;
    let rest = name.strip_prefix("shard-")?;
    let (i, n) = rest.split_once("-of-")?;
    Some((i.parse().ok()?, n.parse().ok()?))
}

/// The `--shard-strategy` a manifestless (killed-mid-run) shard ran
/// under, recovered from any surviving sibling's manifest in the same
/// `-of-<n>` family: shards of one campaign always share the strategy,
/// and a rerun command that omitted a non-default strategy would
/// re-execute the wrong scenario slice.
fn sibling_strategy(shard_dir: &Path, nshards: usize) -> Option<ShardStrategy> {
    let parent = shard_dir.parent()?;
    for entry in std::fs::read_dir(parent).ok()?.filter_map(|e| e.ok()) {
        let p = entry.path();
        if p == *shard_dir || !p.is_dir() {
            continue;
        }
        if parse_shard_dir_name(&p).is_none_or(|(_, n)| n != nshards) {
            continue;
        }
        if let Ok(json) = std::fs::read_to_string(p.join(SHARD_MANIFEST)) {
            if let Ok(m) = serde_json::from_str::<ShardManifest>(&json) {
                return Some(m.strategy);
            }
        }
    }
    None
}

/// The exact invocation that finishes an incomplete shard: resumes the
/// shard in place, using the campaign's spec file when one exists next
/// to the shard directory (the `--workers` layout) and the original
/// axis flags otherwise.
fn rerun_command(
    shard_dir: &Path,
    shard: usize,
    nshards: usize,
    strategy: Option<ShardStrategy>,
) -> String {
    let parent = shard_dir
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    let spec_file = parent.join(crate::exec::SPEC_FILE);
    let spec_part = if spec_file.exists() {
        format!("--spec {}", spec_file.display())
    } else {
        "<original axis flags>".to_string()
    };
    let strategy_part = match strategy {
        Some(s) if s != ShardStrategy::default() => format!(" --shard-strategy {}", s.name()),
        _ => String::new(),
    };
    format!(
        "samr campaign {spec_part} --shard {shard}/{nshards}{strategy_part} --resume --out {}",
        parent.display()
    )
}

/// Discover the shard directories (`shard-<i>-of-<n>` children) of a
/// campaign directory, in name order. Only well-formed names count,
/// and exactly one `-of-<n>` family may be present: a stale
/// `shard-0-of-2` next to a fresh `shard-0-of-3` is rejected by name
/// here instead of surfacing later as a duplicate-index error.
pub fn find_shard_dirs(dir: &Path) -> Result<Vec<PathBuf>, MergeError> {
    let entries = std::fs::read_dir(dir).map_err(|e| MergeError::Io(dir.to_path_buf(), e))?;
    let mut dirs: Vec<(usize, PathBuf)> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .filter_map(|p| parse_shard_dir_name(&p).map(|(_, n)| (n, p)))
        .collect();
    let mut families: Vec<usize> = dirs.iter().map(|(n, _)| *n).collect();
    families.sort_unstable();
    families.dedup();
    if families.len() > 1 {
        return Err(MergeError::MixedShardFamilies { families });
    }
    dirs.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(dirs.into_iter().map(|(_, p)| p).collect())
}

/// Read and cross-validate the manifests of a shard set: same plan
/// hash, same shard/scenario counts, every shard index and every
/// scenario ID exactly once, and every listed artifact pair stamped
/// complete with bytes matching its record. Returns the reference
/// manifest and the manifests with their directories, keyed by shard
/// index.
#[allow(clippy::type_complexity)]
fn validate_shards(
    shard_dirs: &[PathBuf],
) -> Result<(ShardManifest, BTreeMap<usize, (PathBuf, ShardManifest)>), MergeError> {
    if shard_dirs.is_empty() {
        return Err(MergeError::NoShards);
    }
    let mut manifests: BTreeMap<usize, (PathBuf, ShardManifest)> = BTreeMap::new();
    let mut reference: Option<ShardManifest> = None;
    for dir in shard_dirs {
        let m = ShardManifest::read(dir)?;
        if let Some(r) = &reference {
            if m.plan_hash != r.plan_hash {
                return Err(MergeError::PlanHashMismatch {
                    expected: r.plan_hash.clone(),
                    found: m.plan_hash,
                    dir: dir.clone(),
                });
            }
            if m.strategy != r.strategy {
                return Err(MergeError::StrategyMismatch {
                    expected: r.strategy,
                    found: m.strategy,
                    dir: dir.clone(),
                });
            }
            if m.nshards != r.nshards || m.total_scenarios != r.total_scenarios {
                return Err(MergeError::ShapeMismatch {
                    expected: format!("{} shards / {} scenarios", r.nshards, r.total_scenarios),
                    found: format!("{} shards / {} scenarios", m.nshards, m.total_scenarios),
                    dir: dir.clone(),
                });
            }
        } else {
            reference = Some(m.clone());
        }
        let shard = m.shard;
        if manifests.insert(shard, (dir.clone(), m)).is_some() {
            return Err(MergeError::DuplicateShard { shard });
        }
    }
    // Unreachable (the empty set returned above), but a typed error beats
    // a panic on an operator-facing path.
    let Some(reference) = reference else {
        return Err(MergeError::NoShards);
    };
    let missing: Vec<usize> = (0..reference.nshards)
        .filter(|i| !manifests.contains_key(i))
        .collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingShards {
            missing,
            nshards: reference.nshards,
        });
    }
    let mut seen = vec![false; reference.total_scenarios];
    for (_, m) in manifests.values() {
        for entry in &m.scenarios {
            match seen.get_mut(entry.id) {
                Some(slot) if *slot => return Err(MergeError::DuplicateScenario { id: entry.id }),
                Some(slot) => *slot = true,
                // An ID past the declared total: the shard ran a larger
                // plan than it declared — treat as a duplicate-claim
                // class of corruption.
                None => return Err(MergeError::DuplicateScenario { id: entry.id }),
            }
        }
    }
    let missing: Vec<usize> = seen
        .iter()
        .enumerate()
        .filter(|(_, covered)| !**covered)
        .map(|(id, _)| id)
        .collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingScenarios {
            missing,
            total: reference.total_scenarios,
        });
    }
    // Every manifest-listed scenario must be stamped complete with
    // artifact bytes matching the stamp: missing pieces are a resumable
    // gap (report them all, with the rerun command); mismatched bytes
    // are genuine corruption. Digesting here reads every artifact a
    // merge will read again when copying — the deliberate trade-off:
    // validation must finish for the whole set before any merged byte
    // is written, and holding all verified artifacts in memory instead
    // would unbound the merger's residency on large campaigns.
    for (dir, m) in manifests.values() {
        let mut incomplete: Vec<String> = Vec::new();
        for entry in &m.scenarios {
            match CompletionRecord::status(dir, entry.id, &entry.slug, &m.plan_hash) {
                Completion::Complete => {}
                Completion::Incomplete => incomplete.push(entry.slug.clone()),
                Completion::Mismatch(detail) => {
                    return Err(MergeError::CorruptArtifact {
                        path: CompletionRecord::path(dir, &entry.slug),
                        detail,
                        rerun: rerun_command(dir, m.shard, m.nshards, Some(m.strategy)),
                    });
                }
            }
        }
        if !incomplete.is_empty() {
            return Err(MergeError::ShardIncomplete {
                dir: dir.clone(),
                shard: m.shard,
                nshards: m.nshards,
                missing: incomplete,
                rerun: rerun_command(dir, m.shard, m.nshards, Some(m.strategy)),
            });
        }
    }
    Ok((reference, manifests))
}

/// Validate a shard set and merge its artifacts into `out_dir`: copy
/// every scenario's CSV/JSON into the campaign directory (atomically —
/// a crash mid-merge never leaves torn campaign artifacts), rebuild the
/// canonical `campaign.csv` (per-scenario CSVs concatenated in plan
/// order under `# <slug>` headers) and write the audit
/// [`CampaignManifest`].
pub fn merge_shards(shard_dirs: &[PathBuf], out_dir: &Path) -> Result<MergeReport, MergeError> {
    let (reference, manifests) = validate_shards(shard_dirs)?;
    // Scenario id → (shard index, shard dir, slug), in id order via
    // BTreeMap.
    let mut by_id: BTreeMap<usize, (usize, &Path, &str)> = BTreeMap::new();
    for (&shard, (dir, m)) in manifests.iter() {
        for entry in &m.scenarios {
            by_id.insert(entry.id, (shard, dir.as_path(), entry.slug.as_str()));
        }
    }
    std::fs::create_dir_all(out_dir).map_err(|e| MergeError::Io(out_dir.to_path_buf(), e))?;
    let mut paths = Vec::with_capacity(2 * by_id.len() + 3);
    let mut parts: Vec<(String, String)> = Vec::with_capacity(by_id.len());
    let mut entries: Vec<crate::pareto::ParetoEntry> = Vec::with_capacity(by_id.len());
    for (&id, &(shard, shard_dir, slug)) in by_id.iter() {
        let csv_src = shard_dir.join(format!("{slug}.csv"));
        let csv = std::fs::read_to_string(&csv_src).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                MergeError::MissingArtifact(csv_src.clone())
            } else {
                MergeError::Io(csv_src.clone(), e)
            }
        })?;
        let csv_dst = out_dir.join(format!("{slug}.csv"));
        atomic_write(&csv_dst, csv.as_bytes()).map_err(|e| MergeError::Io(csv_dst.clone(), e))?;
        paths.push(csv_dst);
        parts.push((slug.to_string(), csv));
        let json_src = shard_dir.join(format!("{slug}.json"));
        let json = std::fs::read(&json_src).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                MergeError::MissingArtifact(json_src.clone())
            } else {
                MergeError::Io(json_src.clone(), e)
            }
        })?;
        let json_dst = out_dir.join(format!("{slug}.json"));
        atomic_write(&json_dst, &json).map_err(|e| MergeError::Io(json_dst.clone(), e))?;
        // The summary bytes are in hand and in plan order (BTreeMap
        // iterates ids ascending): collect the Pareto entries for the
        // front artifact written after the manifest.
        entries.push(
            crate::pareto::entry_from_json(id, slug, &json_dst, &json).map_err(|e| {
                MergeError::CorruptArtifact {
                    path: json_dst.clone(),
                    detail: e.to_string(),
                    rerun: rerun_command(
                        shard_dir,
                        shard,
                        reference.nshards,
                        Some(reference.strategy),
                    ),
                }
            })?,
        );
        paths.push(json_dst);
    }
    let campaign_csv = assemble_campaign_csv(parts.iter().map(|(s, c)| (s.as_str(), c.as_str())));
    let csv_path = out_dir.join(CAMPAIGN_CSV);
    atomic_write(&csv_path, campaign_csv.as_bytes())
        .map_err(|e| MergeError::Io(csv_path.clone(), e))?;
    paths.push(csv_path.clone());
    let manifest = CampaignManifest {
        plan_hash: reference.plan_hash.clone(),
        scenario_count: reference.total_scenarios,
        shards: reference.nshards,
        elapsed_seconds: manifests.values().map(|(_, m)| m.elapsed_seconds).sum(),
        spec: reference.spec,
    };
    let manifest_path = manifest
        .write(out_dir)
        .map_err(|e| MergeError::Io(out_dir.join(CAMPAIGN_MANIFEST), e))?;
    paths.push(manifest_path);
    // The trade-off front over the merged summaries — the same entries,
    // in the same plan order, through the same computation as the
    // unsharded runner, so the two artifacts are byte-identical.
    if !entries.is_empty() {
        let front = crate::pareto::compute_front(
            &reference.plan_hash,
            &crate::pareto::Objective::ALL,
            &entries,
        )
        .map_err(|e| {
            MergeError::Io(
                out_dir.join(crate::pareto::CAMPAIGN_PARETO),
                std::io::Error::from(e),
            )
        })?;
        let front_path = crate::pareto::write_front(out_dir, &front).map_err(|e| {
            MergeError::Io(
                out_dir.join(crate::pareto::CAMPAIGN_PARETO),
                std::io::Error::from(e),
            )
        })?;
        paths.push(front_path);
    }
    Ok(MergeReport {
        plan_hash: reference.plan_hash,
        scenario_count: reference.total_scenarios,
        shards: reference.nshards,
        paths,
        csv_path,
    })
}
