//! Shard manifest schema and the campaign merger: proving a set of
//! shard artifact directories reassembles exactly one campaign plan,
//! then merging them into the canonical campaign artifacts.
//!
//! Every shard directory carries a [`ShardManifest`] recording which
//! plan it belongs to (the plan hash), which slice of the ID space it
//! covered, and the spec needed to reproduce the campaign.
//! [`merge_shards`] validates the set — same plan hash everywhere, all
//! shard indices present exactly once, every scenario ID covered
//! exactly once — and only then copies the per-scenario CSV/JSON
//! artifacts into the campaign directory in plan order, rebuilding the
//! canonical `campaign.csv` and writing the audit
//! [`CampaignManifest`]. A merged sharded campaign is therefore
//! byte-identical to the unsharded run of the same spec, and a stale,
//! foreign or incomplete shard set is rejected with a precise error
//! instead of producing a silently wrong merge.

use crate::campaign::CampaignSpec;
use crate::plan::ShardStrategy;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of the per-shard manifest inside a shard directory.
pub const SHARD_MANIFEST: &str = "shard.manifest.json";

/// File name of the campaign audit manifest written next to the
/// campaign CSV.
pub const CAMPAIGN_MANIFEST: &str = "campaign.manifest.json";

/// File name of the canonical concatenated campaign CSV.
pub const CAMPAIGN_CSV: &str = "campaign.csv";

/// One scenario as recorded in a shard manifest: its plan ID and the
/// artifact slug its CSV/JSON files are named by.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Stable plan-order scenario ID.
    pub id: usize,
    /// Artifact slug (`<slug>.csv` / `<slug>.json` in the shard dir).
    pub slug: String,
}

/// The self-description a shard executor writes next to its artifacts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Hash of the plan this shard belongs to.
    pub plan_hash: String,
    /// This shard's index (`0..nshards`).
    pub shard: usize,
    /// How many shards the plan was split into.
    pub nshards: usize,
    /// Scenario count of the *whole* plan (the merge's ID space).
    pub total_scenarios: usize,
    /// The shard-assignment strategy the plan used. The plan hash is
    /// deliberately strategy-invariant, so this is recorded separately:
    /// shards assigned under different strategies cover different ID
    /// slices and must be rejected by name, not as ID corruption.
    pub strategy: ShardStrategy,
    /// Wall-clock seconds this shard's execution took.
    pub elapsed_seconds: f64,
    /// The campaign spec, so a merged campaign is reproducible from
    /// its artifacts alone.
    pub spec: CampaignSpec,
    /// The scenarios this shard executed, in plan order.
    pub scenarios: Vec<ManifestEntry>,
}

impl ShardManifest {
    /// Write the manifest into its shard directory.
    pub fn write(&self, shard_dir: &Path) -> std::io::Result<PathBuf> {
        let path = shard_dir.join(SHARD_MANIFEST);
        let json = serde_json::to_string_pretty(self).expect("ShardManifest serializes");
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// Read the manifest of a shard directory.
    pub fn read(shard_dir: &Path) -> Result<Self, MergeError> {
        let path = shard_dir.join(SHARD_MANIFEST);
        let json = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                MergeError::MissingManifest(shard_dir.to_path_buf())
            } else {
                MergeError::Io(path.clone(), e)
            }
        })?;
        serde_json::from_str(&json).map_err(|e| MergeError::BadManifest(path, e.to_string()))
    }
}

/// The audit manifest written next to every campaign CSV: what was
/// run, under which plan, how large it was and how long it took — so
/// merged (and unsharded) campaigns are auditable and reproducible
/// from the artifact directory alone.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Hash of the executed plan.
    pub plan_hash: String,
    /// Number of scenarios in the campaign.
    pub scenario_count: usize,
    /// How many shards produced the artifacts (`1` for the in-process
    /// path).
    pub shards: usize,
    /// Wall-clock seconds of execution (summed across shards for a
    /// merged campaign).
    pub elapsed_seconds: f64,
    /// The campaign spec the plan expanded.
    pub spec: CampaignSpec,
}

impl CampaignManifest {
    /// Write the manifest into the campaign directory.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(CAMPAIGN_MANIFEST);
        let json = serde_json::to_string_pretty(self).expect("CampaignManifest serializes");
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

/// Why a shard set cannot be merged.
#[derive(Debug)]
pub enum MergeError {
    /// No shard directories were given (or discovered).
    NoShards,
    /// A shard directory has no `shard.manifest.json`.
    MissingManifest(PathBuf),
    /// A manifest exists but does not parse.
    BadManifest(PathBuf, String),
    /// A shard belongs to a different plan than the first shard read.
    PlanHashMismatch {
        /// Hash the first shard declared.
        expected: String,
        /// Hash the offending shard declared.
        found: String,
        /// The offending shard directory.
        dir: PathBuf,
    },
    /// Shards were assigned under different `--shard-strategy` values,
    /// so they cover different slices of the ID space.
    StrategyMismatch {
        /// Strategy the first shard declared.
        expected: ShardStrategy,
        /// Strategy the offending shard declared.
        found: ShardStrategy,
        /// The offending shard directory.
        dir: PathBuf,
    },
    /// Shards disagree about the shard count or total scenario count.
    ShapeMismatch {
        /// What the first shard declared.
        expected: String,
        /// What the offending shard declared.
        found: String,
        /// The offending shard directory.
        dir: PathBuf,
    },
    /// The same shard index appears in two directories.
    DuplicateShard {
        /// The repeated shard index.
        shard: usize,
    },
    /// Shard indices absent from the set.
    MissingShards {
        /// The absent indices.
        missing: Vec<usize>,
        /// The plan's shard count.
        nshards: usize,
    },
    /// A scenario ID is claimed by two shards.
    DuplicateScenario {
        /// The repeated scenario ID.
        id: usize,
    },
    /// Scenario IDs no shard covers (a shard ran an older plan or was
    /// truncated).
    MissingScenarios {
        /// The uncovered IDs.
        missing: Vec<usize>,
        /// The plan's scenario count.
        total: usize,
    },
    /// A manifest-listed artifact file is absent from its shard dir.
    MissingArtifact(PathBuf),
    /// Reading or writing artifacts failed.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoShards => write!(f, "no shard directories to merge"),
            Self::MissingManifest(dir) => write!(
                f,
                "{} has no {SHARD_MANIFEST} (not a shard directory?)",
                dir.display()
            ),
            Self::BadManifest(path, e) => {
                write!(f, "{} does not parse: {e}", path.display())
            }
            Self::PlanHashMismatch {
                expected,
                found,
                dir,
            } => write!(
                f,
                "{} belongs to plan {found}, other shards to plan {expected}: \
                 shards of different campaigns cannot be merged",
                dir.display()
            ),
            Self::StrategyMismatch {
                expected,
                found,
                dir,
            } => write!(
                f,
                "{} was sharded with --shard-strategy {}, other shards with {}: \
                 rerun it under the same strategy before merging",
                dir.display(),
                found.name(),
                expected.name()
            ),
            Self::ShapeMismatch {
                expected,
                found,
                dir,
            } => write!(
                f,
                "{} declares {found}, other shards {expected}",
                dir.display()
            ),
            Self::DuplicateShard { shard } => {
                write!(f, "shard {shard} appears more than once in the merge set")
            }
            Self::MissingShards { missing, nshards } => write!(
                f,
                "missing shard(s) {missing:?} of {nshards}: run the absent \
                 `samr campaign --shard i/{nshards}` invocations before merging"
            ),
            Self::DuplicateScenario { id } => {
                write!(f, "scenario id {id} is claimed by more than one shard")
            }
            Self::MissingScenarios { missing, total } => write!(
                f,
                "{} of {total} scenario ids are covered by no shard: {missing:?}",
                missing.len()
            ),
            Self::MissingArtifact(path) => write!(
                f,
                "artifact {} is listed in its shard manifest but absent",
                path.display()
            ),
            Self::Io(path, e) => write!(f, "{}: {e}", path.display()),
        }
    }
}

impl std::error::Error for MergeError {}

/// What a successful merge produced.
#[derive(Debug)]
pub struct MergeReport {
    /// Hash of the merged plan.
    pub plan_hash: String,
    /// Scenarios merged.
    pub scenario_count: usize,
    /// Shards merged.
    pub shards: usize,
    /// Every artifact path written into the campaign directory.
    pub paths: Vec<PathBuf>,
    /// Path of the canonical concatenated campaign CSV.
    pub csv_path: PathBuf,
}

/// Assemble the canonical campaign CSV from `(slug, csv)` parts in plan
/// order: each per-scenario CSV under a `# <slug>` header. The one
/// definition of the format — both the in-process artifact writer and
/// the merger call this, so the byte-identity contract between the
/// unsharded and merged paths cannot drift.
pub(crate) fn assemble_campaign_csv<'a>(
    parts: impl IntoIterator<Item = (&'a str, &'a str)>,
) -> String {
    let mut out = String::new();
    for (slug, csv) in parts {
        out.push_str("# ");
        out.push_str(slug);
        out.push('\n');
        out.push_str(csv);
    }
    out
}

/// Discover the shard directories (`shard-<i>-of-<n>` children) of a
/// campaign directory, in name order.
pub fn find_shard_dirs(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.contains("-of-"))
        })
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Read and cross-validate the manifests of a shard set: same plan
/// hash, same shard/scenario counts, every shard index and every
/// scenario ID exactly once. Returns the manifests with their
/// directories, keyed by shard index.
fn validate_shards(
    shard_dirs: &[PathBuf],
) -> Result<BTreeMap<usize, (PathBuf, ShardManifest)>, MergeError> {
    if shard_dirs.is_empty() {
        return Err(MergeError::NoShards);
    }
    let mut manifests: BTreeMap<usize, (PathBuf, ShardManifest)> = BTreeMap::new();
    let mut reference: Option<ShardManifest> = None;
    for dir in shard_dirs {
        let m = ShardManifest::read(dir)?;
        if let Some(r) = &reference {
            if m.plan_hash != r.plan_hash {
                return Err(MergeError::PlanHashMismatch {
                    expected: r.plan_hash.clone(),
                    found: m.plan_hash,
                    dir: dir.clone(),
                });
            }
            if m.strategy != r.strategy {
                return Err(MergeError::StrategyMismatch {
                    expected: r.strategy,
                    found: m.strategy,
                    dir: dir.clone(),
                });
            }
            if m.nshards != r.nshards || m.total_scenarios != r.total_scenarios {
                return Err(MergeError::ShapeMismatch {
                    expected: format!("{} shards / {} scenarios", r.nshards, r.total_scenarios),
                    found: format!("{} shards / {} scenarios", m.nshards, m.total_scenarios),
                    dir: dir.clone(),
                });
            }
        } else {
            reference = Some(m.clone());
        }
        let shard = m.shard;
        if manifests.insert(shard, (dir.clone(), m)).is_some() {
            return Err(MergeError::DuplicateShard { shard });
        }
    }
    let reference = reference.expect("at least one shard read");
    let missing: Vec<usize> = (0..reference.nshards)
        .filter(|i| !manifests.contains_key(i))
        .collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingShards {
            missing,
            nshards: reference.nshards,
        });
    }
    let mut seen = vec![false; reference.total_scenarios];
    for (_, m) in manifests.values() {
        for entry in &m.scenarios {
            match seen.get_mut(entry.id) {
                Some(slot) if *slot => return Err(MergeError::DuplicateScenario { id: entry.id }),
                Some(slot) => *slot = true,
                // An ID past the declared total: the shard ran a larger
                // plan than it declared — treat as a duplicate-claim
                // class of corruption.
                None => return Err(MergeError::DuplicateScenario { id: entry.id }),
            }
        }
    }
    let missing: Vec<usize> = seen
        .iter()
        .enumerate()
        .filter(|(_, covered)| !**covered)
        .map(|(id, _)| id)
        .collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingScenarios {
            missing,
            total: reference.total_scenarios,
        });
    }
    Ok(manifests)
}

/// Validate a shard set and merge its artifacts into `out_dir`: copy
/// every scenario's CSV/JSON into the campaign directory, rebuild the
/// canonical `campaign.csv` (per-scenario CSVs concatenated in plan
/// order under `# <slug>` headers) and write the audit
/// [`CampaignManifest`].
pub fn merge_shards(shard_dirs: &[PathBuf], out_dir: &Path) -> Result<MergeReport, MergeError> {
    let manifests = validate_shards(shard_dirs)?;
    // Scenario id → (shard dir, slug), in id order via BTreeMap.
    let mut by_id: BTreeMap<usize, (&Path, &str)> = BTreeMap::new();
    for (dir, m) in manifests.values() {
        for entry in &m.scenarios {
            by_id.insert(entry.id, (dir.as_path(), entry.slug.as_str()));
        }
    }
    std::fs::create_dir_all(out_dir).map_err(|e| MergeError::Io(out_dir.to_path_buf(), e))?;
    let mut paths = Vec::with_capacity(2 * by_id.len() + 2);
    let mut parts: Vec<(String, String)> = Vec::with_capacity(by_id.len());
    for (shard_dir, slug) in by_id.values() {
        let csv_src = shard_dir.join(format!("{slug}.csv"));
        let csv = std::fs::read_to_string(&csv_src).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                MergeError::MissingArtifact(csv_src.clone())
            } else {
                MergeError::Io(csv_src.clone(), e)
            }
        })?;
        let csv_dst = out_dir.join(format!("{slug}.csv"));
        std::fs::write(&csv_dst, &csv).map_err(|e| MergeError::Io(csv_dst.clone(), e))?;
        paths.push(csv_dst);
        parts.push((slug.to_string(), csv));
        let json_src = shard_dir.join(format!("{slug}.json"));
        let json_dst = out_dir.join(format!("{slug}.json"));
        match std::fs::copy(&json_src, &json_dst) {
            Ok(_) => paths.push(json_dst),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(MergeError::MissingArtifact(json_src));
            }
            Err(e) => return Err(MergeError::Io(json_src, e)),
        }
    }
    let campaign_csv = assemble_campaign_csv(parts.iter().map(|(s, c)| (s.as_str(), c.as_str())));
    let csv_path = out_dir.join(CAMPAIGN_CSV);
    std::fs::write(&csv_path, &campaign_csv).map_err(|e| MergeError::Io(csv_path.clone(), e))?;
    paths.push(csv_path.clone());
    let (_, reference) = manifests.values().next().expect("non-empty").clone();
    let manifest = CampaignManifest {
        plan_hash: reference.plan_hash.clone(),
        scenario_count: reference.total_scenarios,
        shards: reference.nshards,
        elapsed_seconds: manifests.values().map(|(_, m)| m.elapsed_seconds).sum(),
        spec: reference.spec,
    };
    let manifest_path = manifest
        .write(out_dir)
        .map_err(|e| MergeError::Io(out_dir.join(CAMPAIGN_MANIFEST), e))?;
    paths.push(manifest_path);
    Ok(MergeReport {
        plan_hash: reference.plan_hash,
        scenario_count: reference.total_scenarios,
        shards: reference.nshards,
        paths,
        csv_path,
    })
}
