//! The partitioner registry: every partitioner the engine can run, by
//! name.
//!
//! A [`PartitionerSpec`] is the serializable *description* of a
//! partitioner — either a static configured family
//! ([`PartitionerChoice`]) or one of the dynamic selectors (the adaptive
//! meta-partitioner, the octant-approach baseline). The CLI parses specs
//! from names, campaigns sweep over them, and scenario artifacts record
//! them, so one registry replaces the per-consumer match blocks the
//! facade, benches and CLI used to carry. The description is
//! dimension-free: the same spec materializes a 2-D or a 3-D partitioner
//! depending on the hierarchy it is asked to cut.
//!
//! Beyond the default-configured families, the registry names *parameter
//! presets* (`family:preset`, e.g. `domain-sfc:morton`, `hybrid:frac`,
//! `patch:lpt`): the §4 tunables the paper says a meta-partitioner
//! steers — curve, ordering, atomic unit, bi-level grouping, fractional
//! blocking/splitting — so campaigns can sweep *configurations*, not
//! just families. Preset slugs replace `:` with `-` and stay file-safe.

use samr_meta::compare::run_sequential_source;
use samr_meta::{MetaPartitioner, OctantMetaPartitioner};
use samr_partition::{
    DomainSfcParams, HybridParams, Partitioner, PartitionerChoice, PatchAssign, PatchParams,
    SfcCurve,
};
use samr_sim::{default_window, simulate_source, MachineModel, SimConfig, SimResult};
use samr_trace::io::TraceIoError;
use samr_trace::{HierarchyTrace, MemorySource, SnapshotSource};
use serde::{Deserialize, Serialize};

/// A named, serializable partitioner specification.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PartitionerSpec {
    /// A static configured choice (family + parameters).
    Static(PartitionerChoice),
    /// The adaptive meta-partitioner (continuous classification); its
    /// selector thresholds are derived from the scenario's machine model.
    Meta,
    /// The octant-approach baseline (discrete classification).
    OctantMeta,
}

impl PartitionerSpec {
    /// Every name [`PartitionerSpec::parse`] accepts, with the spec it
    /// produces — the registry the CLI help and campaign sweeps use.
    /// Bare family names carry the default configuration;
    /// `family:preset` names carry the named parameter presets (curve,
    /// ordering, atomic unit, bi-level grouping, fractional
    /// blocking/splitting).
    pub fn registry() -> Vec<(&'static str, PartitionerSpec)> {
        let domain = |params: DomainSfcParams| Self::Static(PartitionerChoice::DomainSfc(params));
        let patch = |params: PatchParams| Self::Static(PartitionerChoice::Patch(params));
        let hybrid = |params: HybridParams| Self::Static(PartitionerChoice::Hybrid(params));
        vec![
            ("domain-sfc", Self::Static(PartitionerChoice::domain_sfc())),
            // Morton instead of Hilbert linearization.
            (
                "domain-sfc:morton",
                domain(DomainSfcParams {
                    curve: SfcCurve::Morton,
                    ..DomainSfcParams::default()
                }),
            ),
            // The partially ordered mapping §5.2 suspects of inflating
            // migration.
            (
                "domain-sfc:partial",
                domain(DomainSfcParams {
                    full_order: false,
                    ..DomainSfcParams::default()
                }),
            ),
            // A coarser atomic unit (fewer, heavier units).
            (
                "domain-sfc:u4",
                domain(DomainSfcParams {
                    atomic_unit: 4,
                    ..DomainSfcParams::default()
                }),
            ),
            ("patch", Self::Static(PartitionerChoice::patch())),
            // Longest-processing-time greedy assignment (unstable across
            // regrids, best instantaneous balance).
            (
                "patch:lpt",
                patch(PatchParams {
                    assign: PatchAssign::Lpt,
                    ..PatchParams::default()
                }),
            ),
            // Fractional splitting: pieces bounded at half the ideal
            // per-processor load — the patch-based analogue of
            // fractional blocking.
            (
                "patch:frac",
                patch(PatchParams {
                    split_factor: 0.5,
                    ..PatchParams::default()
                }),
            ),
            ("hybrid", Self::Static(PartitionerChoice::hybrid())),
            // Fractional blocking of the Hue top-up (§4).
            (
                "hybrid:frac",
                hybrid(HybridParams {
                    fractional_blocking: true,
                    ..HybridParams::default()
                }),
            ),
            // Fully ordered Hilbert curve for the Core splits.
            (
                "hybrid:hilbert",
                hybrid(HybridParams {
                    curve: SfcCurve::Hilbert,
                    full_order: true,
                    ..HybridParams::default()
                }),
            ),
            // Single-level bi-levels (per-level Core splits).
            (
                "hybrid:g1",
                hybrid(HybridParams {
                    bilevel_size: 1,
                    ..HybridParams::default()
                }),
            ),
            ("meta", Self::Meta),
            ("octant-meta", Self::OctantMeta),
        ]
    }

    /// Parse a spec from its registry name: a bare family (`domain-sfc`
    /// — alias `domain` —, `patch`, `hybrid`, `meta`, `octant-meta`) or
    /// a named preset (`domain-sfc:morton`, `hybrid:frac`, `patch:lpt`,
    /// …).
    pub fn parse(name: &str) -> Result<Self, String> {
        let canonical = match name {
            "domain" => "domain-sfc",
            other => other,
        };
        Self::registry()
            .into_iter()
            .find(|(n, _)| *n == canonical)
            .map(|(_, s)| s)
            .ok_or_else(|| {
                let names: Vec<&str> = Self::registry().iter().map(|(n, _)| *n).collect();
                format!(
                    "unknown partitioner '{name}' (expected one of {})",
                    names.join(", ")
                )
            })
    }

    /// The stable file-safe slug used in artifact names: the registry
    /// name with `:` folded to `-` (`domain-sfc:morton` →
    /// `domain-sfc-morton`), or the bare family name for configurations
    /// not in the registry.
    pub fn slug(&self) -> String {
        if let Some((name, _)) = Self::registry().into_iter().find(|(_, s)| s == self) {
            return name.replace(':', "-");
        }
        match self {
            Self::Static(c) => match c {
                PartitionerChoice::DomainSfc(_) => "domain-sfc",
                PartitionerChoice::Patch(_) => "patch",
                PartitionerChoice::Hybrid(_) => "hybrid",
            },
            Self::Meta => "meta",
            Self::OctantMeta => "octant-meta",
        }
        .to_string()
    }

    /// Full configured name (as reported in results).
    pub fn name(&self, machine: &MachineModel) -> String {
        self.build::<2>(machine).name()
    }

    /// `true` for dynamic selectors whose decisions depend on invocation
    /// order; their scenarios are simulated sequentially, never
    /// snapshot-parallel.
    pub fn stateful(&self) -> bool {
        matches!(self, Self::Meta | Self::OctantMeta)
    }

    /// Materialize the partitioner for a machine (the machine model is
    /// the system component of the meta-partitioner's PAC triple) at the
    /// requested dimension.
    pub fn build<const D: usize>(
        &self,
        machine: &MachineModel,
    ) -> Box<dyn Partitioner<D> + Send + Sync> {
        match self {
            Self::Static(choice) => choice.boxed::<D>(),
            Self::Meta => Box::new(MetaPartitioner::<D>::for_machine(machine)),
            Self::OctantMeta => Box::new(OctantMetaPartitioner::<D>::new()),
        }
    }

    /// The streaming window this spec simulates under: the
    /// rayon-matched default for static choices, `1` (strictly
    /// sequential) for stateful selectors whose decisions depend on
    /// invocation order.
    pub fn window(&self) -> usize {
        if self.stateful() {
            1
        } else {
            default_window()
        }
    }

    /// Simulate a snapshot stream under this spec: windowed
    /// snapshot-parallel for static choices, strictly sequential
    /// (window 1) for stateful selectors. The single simulate entry
    /// point shared by scenario execution and the CLI; peak residency is
    /// `O(window)`.
    pub fn simulate_source<const D: usize>(
        &self,
        source: &mut (dyn SnapshotSource<D> + '_),
        cfg: &SimConfig,
    ) -> Result<SimResult, TraceIoError> {
        let partitioner = self.build::<D>(&cfg.machine);
        if self.stateful() {
            let (steps, total_time) = run_sequential_source(source, partitioner.as_ref(), cfg)?;
            Ok(SimResult {
                partitioner: partitioner.name(),
                nprocs: cfg.nprocs,
                steps,
                total_time,
            })
        } else {
            simulate_source(source, partitioner.as_ref(), cfg, self.window())
        }
    }

    /// Simulate a whole in-memory trace under this spec — the batch
    /// facade over [`PartitionerSpec::simulate_source`].
    pub fn simulate<const D: usize>(
        &self,
        trace: &HierarchyTrace<D>,
        cfg: &SimConfig,
    ) -> SimResult {
        self.simulate_source(&mut MemorySource::new(trace), cfg)
            .expect("in-memory snapshot sources cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_name_parses_to_itself() {
        for (name, spec) in PartitionerSpec::registry() {
            assert_eq!(PartitionerSpec::parse(name).unwrap(), spec);
            assert_eq!(spec.slug(), name.replace(':', "-"));
            assert!(
                !spec.slug().contains([':', '/', ' ']),
                "slug {} is not file-safe",
                spec.slug()
            );
        }
    }

    #[test]
    fn registry_entries_are_distinct() {
        // A preset equal to a family default would make slug lookup
        // ambiguous and expand campaigns to duplicate scenarios.
        let registry = PartitionerSpec::registry();
        for (i, (_, a)) in registry.iter().enumerate() {
            for (_, b) in &registry[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn presets_configure_the_advertised_parameters() {
        use samr_partition::SfcCurve;
        match PartitionerSpec::parse("domain-sfc:morton").unwrap() {
            PartitionerSpec::Static(PartitionerChoice::DomainSfc(p)) => {
                assert_eq!(p.curve, SfcCurve::Morton)
            }
            other => panic!("wrong spec {other:?}"),
        }
        match PartitionerSpec::parse("hybrid:frac").unwrap() {
            PartitionerSpec::Static(PartitionerChoice::Hybrid(p)) => {
                assert!(p.fractional_blocking)
            }
            other => panic!("wrong spec {other:?}"),
        }
        match PartitionerSpec::parse("patch:frac").unwrap() {
            PartitionerSpec::Static(PartitionerChoice::Patch(p)) => {
                assert_eq!(p.split_factor, 0.5)
            }
            other => panic!("wrong spec {other:?}"),
        }
        // Presets simulate like any static choice (not stateful).
        assert!(!PartitionerSpec::parse("hybrid:g1").unwrap().stateful());
    }

    #[test]
    fn domain_alias_parses() {
        assert_eq!(
            PartitionerSpec::parse("domain").unwrap(),
            PartitionerSpec::Static(PartitionerChoice::domain_sfc())
        );
    }

    #[test]
    fn unknown_names_are_rejected_with_the_registry() {
        let err = PartitionerSpec::parse("simd").unwrap_err();
        assert!(
            err.contains("hybrid") && err.contains("octant-meta"),
            "{err}"
        );
    }

    #[test]
    fn only_dynamic_selectors_are_stateful() {
        assert!(PartitionerSpec::Meta.stateful());
        assert!(PartitionerSpec::OctantMeta.stateful());
        assert!(!PartitionerSpec::parse("hybrid").unwrap().stateful());
    }

    #[test]
    fn specs_roundtrip_through_json() {
        for (_, spec) in PartitionerSpec::registry() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PartitionerSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "{json}");
        }
    }

    #[test]
    fn specs_build_partitioners_of_either_dimension() {
        use samr_geom::Box3;
        use samr_grid::GridHierarchy;
        let machine = MachineModel::default();
        let h = GridHierarchy::from_level_rects(
            Box3::from_extents(8, 8, 8),
            2,
            &[vec![], vec![Box3::from_coords(2, 2, 2, 9, 9, 9)]],
        );
        for (_, spec) in PartitionerSpec::registry() {
            let p = spec.build::<3>(&machine);
            let part = p.partition(&h, 4);
            assert_eq!(samr_partition::validate_partition(&h, &part), Ok(()));
        }
    }
}
