//! The partitioner registry: every partitioner the engine can run, by
//! name.
//!
//! A [`PartitionerSpec`] is the serializable *description* of a
//! partitioner — either a static configured family
//! ([`PartitionerChoice`]) or one of the dynamic selectors (the adaptive
//! meta-partitioner, the octant-approach baseline). The CLI parses specs
//! from names, campaigns sweep over them, and scenario artifacts record
//! them, so one registry replaces the per-consumer match blocks the
//! facade, benches and CLI used to carry. The description is
//! dimension-free: the same spec materializes a 2-D or a 3-D partitioner
//! depending on the hierarchy it is asked to cut.

use samr_meta::compare::run_sequential;
use samr_meta::{MetaPartitioner, OctantMetaPartitioner};
use samr_partition::{Partitioner, PartitionerChoice};
use samr_sim::{simulate_trace, MachineModel, SimConfig, SimResult};
use samr_trace::HierarchyTrace;
use serde::{Deserialize, Serialize};

/// A named, serializable partitioner specification.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PartitionerSpec {
    /// A static configured choice (family + parameters).
    Static(PartitionerChoice),
    /// The adaptive meta-partitioner (continuous classification); its
    /// selector thresholds are derived from the scenario's machine model.
    Meta,
    /// The octant-approach baseline (discrete classification).
    OctantMeta,
}

impl PartitionerSpec {
    /// Every name [`PartitionerSpec::parse`] accepts, with the spec it
    /// produces — the registry the CLI help and campaign sweeps use.
    pub fn registry() -> Vec<(&'static str, PartitionerSpec)> {
        vec![
            ("domain-sfc", Self::Static(PartitionerChoice::domain_sfc())),
            ("patch", Self::Static(PartitionerChoice::patch())),
            ("hybrid", Self::Static(PartitionerChoice::hybrid())),
            ("meta", Self::Meta),
            ("octant-meta", Self::OctantMeta),
        ]
    }

    /// Parse a spec from its registry name (`domain-sfc` — alias
    /// `domain` —, `patch`, `hybrid`, `meta`, `octant-meta`).
    pub fn parse(name: &str) -> Result<Self, String> {
        let canonical = match name {
            "domain" => "domain-sfc",
            other => other,
        };
        Self::registry()
            .into_iter()
            .find(|(n, _)| *n == canonical)
            .map(|(_, s)| s)
            .ok_or_else(|| {
                let names: Vec<&str> = Self::registry().iter().map(|(n, _)| *n).collect();
                format!(
                    "unknown partitioner '{name}' (expected one of {})",
                    names.join(", ")
                )
            })
    }

    /// The registry name (stable slug used in artifact file names).
    pub fn slug(&self) -> &'static str {
        match self {
            Self::Static(c) => match c {
                PartitionerChoice::DomainSfc(_) => "domain-sfc",
                PartitionerChoice::Patch(_) => "patch",
                PartitionerChoice::Hybrid(_) => "hybrid",
            },
            Self::Meta => "meta",
            Self::OctantMeta => "octant-meta",
        }
    }

    /// Full configured name (as reported in results).
    pub fn name(&self, machine: &MachineModel) -> String {
        self.build::<2>(machine).name()
    }

    /// `true` for dynamic selectors whose decisions depend on invocation
    /// order; their scenarios are simulated sequentially, never
    /// snapshot-parallel.
    pub fn stateful(&self) -> bool {
        matches!(self, Self::Meta | Self::OctantMeta)
    }

    /// Materialize the partitioner for a machine (the machine model is
    /// the system component of the meta-partitioner's PAC triple) at the
    /// requested dimension.
    pub fn build<const D: usize>(
        &self,
        machine: &MachineModel,
    ) -> Box<dyn Partitioner<D> + Send + Sync> {
        match self {
            Self::Static(choice) => choice.boxed::<D>(),
            Self::Meta => Box::new(MetaPartitioner::<D>::for_machine(machine)),
            Self::OctantMeta => Box::new(OctantMetaPartitioner::<D>::new()),
        }
    }

    /// Simulate a trace under this spec: snapshot-parallel for static
    /// choices, strictly sequential for stateful selectors. The single
    /// simulate entry point shared by scenario execution and the CLI.
    pub fn simulate<const D: usize>(
        &self,
        trace: &HierarchyTrace<D>,
        cfg: &SimConfig,
    ) -> SimResult {
        let partitioner = self.build::<D>(&cfg.machine);
        if self.stateful() {
            let (steps, total_time) = run_sequential(trace, partitioner.as_ref(), cfg);
            SimResult {
                partitioner: partitioner.name(),
                nprocs: cfg.nprocs,
                steps,
                total_time,
            }
        } else {
            simulate_trace(trace, partitioner.as_ref(), cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_name_parses_to_itself() {
        for (name, spec) in PartitionerSpec::registry() {
            assert_eq!(PartitionerSpec::parse(name).unwrap(), spec);
            assert_eq!(spec.slug(), name);
        }
    }

    #[test]
    fn domain_alias_parses() {
        assert_eq!(
            PartitionerSpec::parse("domain").unwrap(),
            PartitionerSpec::Static(PartitionerChoice::domain_sfc())
        );
    }

    #[test]
    fn unknown_names_are_rejected_with_the_registry() {
        let err = PartitionerSpec::parse("simd").unwrap_err();
        assert!(
            err.contains("hybrid") && err.contains("octant-meta"),
            "{err}"
        );
    }

    #[test]
    fn only_dynamic_selectors_are_stateful() {
        assert!(PartitionerSpec::Meta.stateful());
        assert!(PartitionerSpec::OctantMeta.stateful());
        assert!(!PartitionerSpec::parse("hybrid").unwrap().stateful());
    }

    #[test]
    fn specs_roundtrip_through_json() {
        for (_, spec) in PartitionerSpec::registry() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PartitionerSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "{json}");
        }
    }

    #[test]
    fn specs_build_partitioners_of_either_dimension() {
        use samr_geom::Box3;
        use samr_grid::GridHierarchy;
        let machine = MachineModel::default();
        let h = GridHierarchy::from_level_rects(
            Box3::from_extents(8, 8, 8),
            2,
            &[vec![], vec![Box3::from_coords(2, 2, 2, 9, 9, 9)]],
        );
        for (_, spec) in PartitionerSpec::registry() {
            let p = spec.build::<3>(&machine);
            let part = p.partition(&h, 4);
            assert_eq!(samr_partition::validate_partition(&h, &part), Ok(()));
        }
    }
}
