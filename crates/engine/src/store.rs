//! Process-wide trace and model-series store.
//!
//! Trace generation costs tens of seconds at paper scale, and every
//! figure, test, bench and campaign scenario wants the same traces; the
//! model series over a trace is likewise shared by every scenario that
//! sweeps partitioners or processor counts over the same application.
//! This module keeps both behind one cache. Traces are stored
//! dimension-erased ([`AnyTrace`]) so 2-D and 3-D workloads share one
//! store; the model series is scalar either way.
//!
//! **Cache key correctness.** The key is the application kind plus the
//! *entire* serialized [`TraceGenConfig`]. The facade's original cache
//! keyed on `(kind, steps, base_cells, ref_resolution, seed)` only, so
//! two configurations differing in `max_levels` (or any clustering
//! option) collided and silently returned the wrong cached trace —
//! e.g. a 3-level smoke config poisoned a later 5-level request with the
//! same step count. Serializing the full config makes the key total over
//! every field, including ones added later. The application kind encodes
//! the dimension, so 2-D and 3-D entries can never collide either.

use samr_apps::{generate_trace_any, AppKind, TraceGenConfig};
use samr_core::{ModelPipeline, ModelState};
use samr_trace::AnyTrace;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The full-configuration cache key of a trace request.
pub fn trace_key(kind: AppKind, cfg: &TraceGenConfig) -> String {
    let cfg_json = serde_json::to_string(cfg).expect("TraceGenConfig serializes");
    format!("{}:{cfg_json}", kind.name())
}

type TraceCache = Mutex<HashMap<String, Arc<AnyTrace>>>;
type ModelCache = Mutex<HashMap<String, Arc<Vec<ModelState>>>>;

fn trace_cache() -> &'static TraceCache {
    static CACHE: OnceLock<TraceCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn model_cache() -> &'static ModelCache {
    static CACHE: OnceLock<ModelCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Generate (or fetch from the process-wide cache) the trace of an
/// application under a configuration.
///
/// Generation happens outside the cache lock, so concurrent campaign
/// workers asking for *different* traces generate them in parallel;
/// concurrent requests for the same key may race to generate, in which
/// case the first inserted trace wins and the others are dropped (the
/// generator is deterministic, so all candidates are identical anyway).
pub fn cached_trace(kind: AppKind, cfg: &TraceGenConfig) -> Arc<AnyTrace> {
    let key = trace_key(kind, cfg);
    if let Some(t) = trace_cache().lock().unwrap().get(&key) {
        return Arc::clone(t);
    }
    let trace = Arc::new(generate_trace_any(kind, cfg));
    Arc::clone(trace_cache().lock().unwrap().entry(key).or_insert(trace))
}

/// The model series (per-step penalties and classification points) over
/// the cached trace of an application — computed once per configuration
/// and shared by every scenario sweeping partitioners over it.
pub fn cached_model(kind: AppKind, cfg: &TraceGenConfig) -> Arc<Vec<ModelState>> {
    let key = trace_key(kind, cfg);
    if let Some(m) = model_cache().lock().unwrap().get(&key) {
        return Arc::clone(m);
    }
    let trace = cached_trace(kind, cfg);
    let pipeline = ModelPipeline::new();
    let model = Arc::new(match &*trace {
        AnyTrace::D2(t) => pipeline.run(t),
        AnyTrace::D3(t) => pipeline.run(t),
    });
    Arc::clone(model_cache().lock().unwrap().entry(key).or_insert(model))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_distinguishes_level_depth() {
        // The regression the old tuple key had: identical in every keyed
        // field, different `max_levels`.
        let shallow = TraceGenConfig {
            max_levels: 3,
            ..TraceGenConfig::smoke()
        };
        let deep = TraceGenConfig {
            max_levels: 5,
            ..TraceGenConfig::smoke()
        };
        assert_ne!(
            trace_key(AppKind::Bl2d, &shallow),
            trace_key(AppKind::Bl2d, &deep)
        );
        let a = cached_trace(AppKind::Bl2d, &shallow);
        let b = cached_trace(AppKind::Bl2d, &deep);
        assert!(!Arc::ptr_eq(&a, &b), "distinct configs must not collide");
    }

    #[test]
    fn same_config_hits_the_cache() {
        let cfg = TraceGenConfig::smoke();
        let a = cached_trace(AppKind::Tp2d, &cfg);
        let b = cached_trace(AppKind::Tp2d, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn model_series_matches_trace_length() {
        let cfg = TraceGenConfig::smoke();
        let trace = cached_trace(AppKind::Sc2d, &cfg);
        let model = cached_model(AppKind::Sc2d, &cfg);
        assert_eq!(model.len(), trace.len());
        assert!(Arc::ptr_eq(&model, &cached_model(AppKind::Sc2d, &cfg)));
    }

    #[test]
    fn three_d_traces_share_the_store() {
        let cfg = TraceGenConfig {
            base_cells: 16,
            steps: 4,
            ..TraceGenConfig::smoke()
        };
        let t = cached_trace(AppKind::Sp3d, &cfg);
        assert_eq!(t.dim(), 3);
        assert!(Arc::ptr_eq(&t, &cached_trace(AppKind::Sp3d, &cfg)));
        let model = cached_model(AppKind::Sp3d, &cfg);
        assert_eq!(model.len(), t.len());
        for s in model.iter() {
            assert!((0.0..=1.0).contains(&s.beta_m));
            assert!((0.0..=1.0).contains(&s.beta_c));
        }
    }
}
