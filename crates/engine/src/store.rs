//! Process-wide trace and model-series store, with a byte-budgeted
//! spill-to-disk cache behind the streaming path.
//!
//! Trace generation costs tens of seconds at paper scale, and every
//! figure, test, bench and campaign scenario wants the same traces; the
//! model series over a trace is likewise shared by every scenario that
//! sweeps partitioners or processor counts over the same application.
//! This module keeps both behind one cache.
//!
//! **Streaming path.** [`cached_source`] is the bounded-memory entry
//! point scenarios run through: on a miss it generates the trace as a
//! pull stream and writes it *straight to disk* (binary codec, one
//! snapshot resident at a time), then either admits the decoded trace to
//! the in-memory store — if the whole store stays under the byte budget
//! ([`trace_cache_budget`], default 256 MiB, env
//! `SAMR_TRACE_CACHE_BYTES`) — or serves it as a streaming reader over
//! the spill file. Either way a scenario's peak residency never includes
//! a trace the budget says must stay on disk.
//!
//! **Cache key correctness.** The key is the application kind plus the
//! *entire* serialized [`TraceGenConfig`] (the facade's original cache
//! keyed on a field subset and collided); the spill file name is a hash
//! of the same full-config key. The application kind encodes the
//! dimension, so 2-D and 3-D entries can never collide either.

use samr_apps::{generate_trace_any, trace_source_any, AppKind, TraceGenConfig};
use samr_core::{ModelPipeline, ModelState};
use samr_trace::io::{open_trace_source, write_binary_source, TraceIoError};
use samr_trace::{shared_source, AnySnapshotSource, AnyTrace};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The full-configuration cache key of a trace request.
pub fn trace_key(kind: AppKind, cfg: &TraceGenConfig) -> String {
    let cfg_json = serde_json::to_string(cfg).expect("TraceGenConfig serializes");
    format!("{}:{cfg_json}", kind.name())
}

type TraceCache = Mutex<HashMap<String, Arc<AnyTrace>>>;
type ModelCache = Mutex<HashMap<String, Arc<Vec<ModelState>>>>;

fn trace_cache() -> &'static TraceCache {
    static CACHE: OnceLock<TraceCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn model_cache() -> &'static ModelCache {
    static CACHE: OnceLock<ModelCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Approximate bytes currently held by the in-memory trace store.
fn mem_bytes() -> &'static AtomicU64 {
    static BYTES: AtomicU64 = AtomicU64::new(0);
    &BYTES
}

fn budget() -> &'static AtomicU64 {
    static BUDGET: OnceLock<AtomicU64> = OnceLock::new();
    BUDGET.get_or_init(|| {
        let default = 256 * 1024 * 1024;
        let bytes = match std::env::var("SAMR_TRACE_CACHE_BYTES") {
            Ok(v) => match v.parse::<u64>() {
                Ok(bytes) => bytes,
                // A budget the operator set but we cannot honor must not
                // be swallowed: say what was rejected and what runs.
                Err(_) => {
                    eprintln!(
                        "warning: SAMR_TRACE_CACHE_BYTES='{v}' is not a plain byte count \
                         (e.g. 268435456); using the default of {default} bytes"
                    );
                    default
                }
            },
            Err(_) => default,
        };
        AtomicU64::new(bytes)
    })
}

/// The in-memory trace-store byte budget: traces whose admission would
/// push the store past it are served as streaming readers over their
/// spill files instead. Initialized from `SAMR_TRACE_CACHE_BYTES`
/// (default 256 MiB); adjustable at runtime with
/// [`set_trace_cache_budget`].
pub fn trace_cache_budget() -> u64 {
    budget().load(Ordering::Relaxed)
}

/// Override the in-memory trace-store byte budget (see
/// [`trace_cache_budget`]). `0` forces every streamed trace to stay on
/// disk.
pub fn set_trace_cache_budget(bytes: u64) {
    budget().store(bytes, Ordering::Relaxed);
}

/// The directory spill files live in: shared across processes under the
/// system temp dir, so repeated runs reuse each other's spill files
/// instead of regenerating (and instead of leaking one directory per
/// pid). Safe because file names are content keys — a hash of the full
/// trace configuration *and* the crate version, so a build whose
/// generator changed never reads an older build's bytes — and files are
/// written to a unique temp name and renamed into place whole. The
/// directory itself is created lazily by [`generate_spill`], so an
/// unwritable temp dir surfaces as a typed I/O error on the degradable
/// spill path instead of a panic.
fn spill_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| std::env::temp_dir().join("samr-trace-cache"))
}

/// FNV-1a over the full-config key, salted with the crate version: a
/// stable, file-safe spill name.
fn spill_path(key: &str) -> PathBuf {
    let hash = crate::plan::fnv1a_hex([env!("CARGO_PKG_VERSION").as_bytes(), key.as_bytes()]);
    spill_dir().join(format!("{hash}.trc"))
}

/// Generate the trace as a stream and spill it to disk (binary codec),
/// never holding more than one snapshot; returns the spill path.
fn generate_spill(kind: AppKind, cfg: &TraceGenConfig, path: &PathBuf) -> Result<(), TraceIoError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        match trace_source_any(kind, cfg) {
            AnySnapshotSource::D2(mut s) => write_binary_source::<2, _>(&mut s, &mut w)?,
            AnySnapshotSource::D3(mut s) => write_binary_source::<3, _>(&mut s, &mut w)?,
        };
    }
    // Concurrent generators race benignly: the content is deterministic,
    // so whichever rename lands last is byte-identical.
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Admit a trace to the in-memory store, tracking its footprint.
fn admit(key: String, trace: Arc<AnyTrace>) -> Arc<AnyTrace> {
    let mut cache = trace_cache().lock().unwrap();
    let entry = cache.entry(key).or_insert_with(|| {
        mem_bytes().fetch_add(trace.approx_bytes(), Ordering::Relaxed);
        trace
    });
    Arc::clone(entry)
}

/// Open (or create) the bounded-memory snapshot stream of an
/// application's trace under a configuration — the streaming counterpart
/// of [`cached_trace`] and the path every scenario runs through.
///
/// Resolution order: the in-memory store (zero I/O), then an existing
/// spill file, then generate-to-spill. A freshly spilled trace is
/// admitted to the in-memory store only if the store stays within
/// [`trace_cache_budget`]; otherwise the returned source streams from
/// disk and the trace is never whole in memory.
pub fn cached_source(
    kind: AppKind,
    cfg: &TraceGenConfig,
) -> Result<AnySnapshotSource, TraceIoError> {
    let key = trace_key(kind, cfg);
    if let Some(t) = trace_cache().lock().unwrap().get(&key) {
        return Ok(shared_source(Arc::clone(t)));
    }
    let path = spill_path(&key);
    if !path.exists() {
        generate_spill(kind, cfg, &path)?;
    }
    let file_bytes = std::fs::metadata(&path)?.len();
    // In-memory patches cost roughly 2–3× their 8-byte-per-coordinate
    // binary encoding; 3× keeps the admission decision conservative.
    let projected = mem_bytes().load(Ordering::Relaxed) + 3 * file_bytes;
    if projected <= trace_cache_budget() {
        let trace = Arc::new(open_trace_source(&path)?.collect()?);
        return Ok(shared_source(admit(key, trace)));
    }
    open_trace_source(&path)
}

/// Generate (or fetch from the process-wide cache) the whole trace of an
/// application under a configuration — the batch API. Materializes the
/// trace regardless of the byte budget (callers that can stream should
/// use [`cached_source`]).
///
/// Generation happens outside the cache lock, so concurrent campaign
/// workers asking for *different* traces generate them in parallel;
/// concurrent requests for the same key may race to generate, in which
/// case the first inserted trace wins and the others are dropped (the
/// generator is deterministic, so all candidates are identical anyway).
pub fn cached_trace(kind: AppKind, cfg: &TraceGenConfig) -> Arc<AnyTrace> {
    let key = trace_key(kind, cfg);
    if let Some(t) = trace_cache().lock().unwrap().get(&key) {
        return Arc::clone(t);
    }
    let trace = Arc::new(generate_trace_any(kind, cfg));
    admit(key, trace)
}

/// The model series (per-step penalties and classification points) over
/// the cached trace of an application — computed once per configuration
/// as a streaming fold (at most two snapshots resident) and shared by
/// every scenario sweeping partitioners over it. A spill-file I/O
/// failure degrades to the in-memory batch path (identical output)
/// rather than aborting the campaign.
pub fn cached_model(kind: AppKind, cfg: &TraceGenConfig) -> Arc<Vec<ModelState>> {
    let key = trace_key(kind, cfg);
    if let Some(m) = model_cache().lock().unwrap().get(&key) {
        return Arc::clone(m);
    }
    let pipeline = ModelPipeline::new();
    let states = cached_source(kind, cfg)
        .and_then(|mut source| pipeline.run_any_source(&mut source))
        .unwrap_or_else(|_| {
            // Disk trouble (full temp dir, reaped spill file) must not
            // kill a multi-scenario sweep: regenerate in memory.
            let trace = cached_trace(kind, cfg);
            match &*trace {
                AnyTrace::D2(t) => pipeline.run(t),
                AnyTrace::D3(t) => pipeline.run(t),
            }
        });
    let model = Arc::new(states);
    Arc::clone(model_cache().lock().unwrap().entry(key).or_insert(model))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_distinguishes_level_depth() {
        // The regression the old tuple key had: identical in every keyed
        // field, different `max_levels`.
        let shallow = TraceGenConfig {
            max_levels: 3,
            ..TraceGenConfig::smoke()
        };
        let deep = TraceGenConfig {
            max_levels: 5,
            ..TraceGenConfig::smoke()
        };
        assert_ne!(
            trace_key(AppKind::Bl2d, &shallow),
            trace_key(AppKind::Bl2d, &deep)
        );
        let a = cached_trace(AppKind::Bl2d, &shallow);
        let b = cached_trace(AppKind::Bl2d, &deep);
        assert!(!Arc::ptr_eq(&a, &b), "distinct configs must not collide");
    }

    #[test]
    fn same_config_hits_the_cache() {
        let cfg = TraceGenConfig::smoke();
        let a = cached_trace(AppKind::Tp2d, &cfg);
        let b = cached_trace(AppKind::Tp2d, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn model_series_matches_trace_length() {
        let cfg = TraceGenConfig::smoke();
        let trace = cached_trace(AppKind::Sc2d, &cfg);
        let model = cached_model(AppKind::Sc2d, &cfg);
        assert_eq!(model.len(), trace.len());
        assert!(Arc::ptr_eq(&model, &cached_model(AppKind::Sc2d, &cfg)));
    }

    #[test]
    fn three_d_traces_share_the_store() {
        let cfg = TraceGenConfig {
            base_cells: 16,
            steps: 4,
            ..TraceGenConfig::smoke()
        };
        let t = cached_trace(AppKind::Sp3d, &cfg);
        assert_eq!(t.dim(), 3);
        assert!(Arc::ptr_eq(&t, &cached_trace(AppKind::Sp3d, &cfg)));
        let model = cached_model(AppKind::Sp3d, &cfg);
        assert_eq!(model.len(), t.len());
        for s in model.iter() {
            assert!((0.0..=1.0).contains(&s.beta_m));
            assert!((0.0..=1.0).contains(&s.beta_c));
        }
    }

    #[test]
    fn cached_source_streams_the_same_trace_as_the_batch_store() {
        let cfg = TraceGenConfig {
            seed: 77, // distinct key: exercise the generate-to-spill path
            ..TraceGenConfig::smoke()
        };
        let streamed = cached_source(AppKind::Tp2d, &cfg)
            .unwrap()
            .collect()
            .unwrap();
        let batch = cached_trace(AppKind::Tp2d, &cfg);
        assert_eq!(streamed, *batch);
        // The spill file exists and decodes to the same trace.
        let path = spill_path(&trace_key(AppKind::Tp2d, &cfg));
        assert!(path.exists(), "spill file missing at {path:?}");
    }

    #[test]
    fn spilled_traces_stay_on_disk_and_stream_identically() {
        // Force the spill decision without touching the global budget:
        // generate the spill, then open it directly as the over-budget
        // branch does.
        let cfg = TraceGenConfig {
            seed: 78,
            ..TraceGenConfig::smoke()
        };
        let key = trace_key(AppKind::Sc2d, &cfg);
        let path = spill_path(&key);
        generate_spill(AppKind::Sc2d, &cfg, &path).unwrap();
        let from_disk = open_trace_source(&path).unwrap().collect().unwrap();
        assert_eq!(from_disk, *cached_trace(AppKind::Sc2d, &cfg));
        // A disk-backed source never enters the in-memory store under a
        // zero budget: the projected size always exceeds it.
        let file_bytes = std::fs::metadata(&path).unwrap().len();
        assert!(3 * file_bytes > 0);
    }

    #[test]
    fn budget_knob_is_observable() {
        let before = trace_cache_budget();
        assert!(before > 0, "default budget must admit smoke traces");
    }
}
