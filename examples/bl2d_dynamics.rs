//! Figure 1 + Figure 5 reproduction: BL2D dynamics under a static
//! partitioner.
//!
//! Figure 1 of the paper plots load imbalance and communication amount of
//! the BL2D application over time under a *static* choice of partitioner,
//! to motivate dynamic selection ("with a dynamic selection of P … the
//! total execution time could have been reduced"). Figure 5 superimposes
//! the model penalties on the measured relative communication and data
//! migration. This example prints both: the per-step series as CSV and
//! the oscillation statistics (the BL2D series are strongly periodic —
//! the injection discharge/recharge cycle).

use samr::apps::AppKind;
use samr::experiments::{configs, ValidationRun};
use samr::sim::metrics::dominant_period;

fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let cfg = if reduced {
        configs::reduced()
    } else {
        configs::paper()
    };
    let run = ValidationRun::execute(AppKind::Bl2d, &cfg, &configs::sim());
    print!("{}", run.to_csv());
    eprintln!("{}", run.summary());

    let imb: Vec<f64> = run.sim.steps.iter().map(|s| s.load_imbalance).collect();
    let comm: Vec<f64> = run.sim.steps.iter().map(|s| s.rel_comm).collect();
    eprintln!(
        "Figure 1 series: load imbalance mean {:.3} (min {:.3}, max {:.3}), period {:?}; \
         communication mean {:.3}, period {:?}",
        imb.iter().sum::<f64>() / imb.len() as f64,
        imb.iter().cloned().fold(f64::INFINITY, f64::min),
        imb.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        dominant_period(&imb),
        comm.iter().sum::<f64>() / comm.len() as f64,
        dominant_period(&comm),
    );
    eprintln!(
        "paper expectation (Fig. 1/5): oscillatory behaviour; the model follows the \
         time periods, with matching peaks and valleys"
    );
}
