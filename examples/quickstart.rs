//! Quickstart: generate a BL2D trace, run the model, print penalties.
use samr::apps::{generate_trace, AppKind, TraceGenConfig};
use samr::model::ModelPipeline;

fn main() {
    let trace = generate_trace(AppKind::Bl2d, &TraceGenConfig::smoke());
    let states = ModelPipeline::new().run(&trace);
    println!("step  beta_l  beta_c  beta_m   d1    d2    d3");
    for s in &states {
        println!(
            "{:4}  {:.4}  {:.4}  {:.4}  {:.2}  {:.2}  {:.2}",
            s.step, s.beta_l, s.beta_c, s.beta_m, s.point.d1, s.point.d2, s.point.d3
        );
    }
}
