//! Figure 3 (right) reproduction: the continuous partitioner-centric
//! classification space and the state locus.
//!
//! For each of the four applications, runs the model over the trace and
//! prints the locus — the curve of `(d1, d2, d3)` classification points
//! the simulation traces out. Unlike the octant approach's discrete
//! transitions, the locus is a smooth curve; its arc length measures how
//! much the partitioning requirements moved (the motivation for dynamic
//! re-selection), and the octant-transition count shows how coarse the
//! legacy discrete view of the same trajectory would have been.

use samr::apps::AppKind;
use samr::experiments::{cached_trace, configs};
use samr::model::ModelPipeline;

fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let cfg = if reduced {
        configs::reduced()
    } else {
        configs::paper()
    };
    println!("app,step,d1,d2,d3");
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        let pipeline = ModelPipeline::new();
        let curve = match &*trace {
            samr::trace::AnyTrace::D2(t) => pipeline.state_curve(t),
            samr::trace::AnyTrace::D3(t) => pipeline.state_curve(t),
        };
        for (step, p) in &curve.points {
            println!(
                "{},{},{:.4},{:.4},{:.4}",
                kind.name(),
                step,
                p.d1,
                p.d2,
                p.d3
            );
        }
        eprintln!(
            "{}: locus arc length {:.3} over {} steps; {} octant transitions \
             (the discrete legacy view would have re-selected that many times)",
            kind.name(),
            curve.arc_length(),
            curve.len(),
            curve.octant_transitions(),
        );
    }
}
