//! Figure 4 reproduction: RM2D — model penalties vs. measured behaviour.
//!
//! Runs the paper's §5.1 pipeline for the Richtmyer–Meshkov kernel:
//! generate the 100-step hierarchy trace (5 levels, factor-2 space/time
//! refinement, regrid every 4 steps per level, granularity 2), compute
//! β_c and β_m per step ab initio, partition every snapshot with the
//! static neutral hybrid set-up on 16 processors, simulate the execution,
//! and print both panels of Figure 4 as CSV plus the shape statistics.
//!
//! Run with `--reduced` for a fast (seconds) variant of the same
//! pipeline.

use samr::apps::AppKind;
use samr::experiments::{configs, ValidationRun};

fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let cfg = if reduced {
        configs::reduced()
    } else {
        configs::paper()
    };
    let run = ValidationRun::execute(AppKind::Rm2d, &cfg, &configs::sim());
    print!("{}", run.to_csv());
    eprintln!("{}", run.summary());
    eprintln!(
        "paper expectation (Fig. 4): penalties capture the essence; both series change seemingly randomly"
    );
}
