//! META1 experiment: static vs. dynamic partitioner selection, as a
//! campaign sweep.
//!
//! The paper's motivation (Figure 1, §3) and the ArMADA proof of concept:
//! a static partitioner choice leaves execution time on the table; "even
//! with such a simple model, execution times were reduced". This example
//! expands **one** `Campaign` whose machine axis sweeps the named
//! presets (`uniform`, `slow-net`, `slow-cpu`) over the full partitioner
//! registry (the static families with their parameter presets, the
//! octant baseline and the adaptive meta-partitioner) × all four
//! applications, and reports total estimated execution times plus the
//! meta/best-static and meta/worst-static ratios — all from the shared
//! trace store, with no hand-wired pipeline.

use samr::apps::AppKind;
use samr::engine::{Campaign, CampaignSpec, PartitionerSpec, ScenarioOutcome};
use samr::sim::MachineModel;

fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let cfg = if reduced {
        samr::engine::configs::reduced()
    } else {
        samr::engine::configs::paper()
    };
    let registry: Vec<PartitionerSpec> = PartitionerSpec::registry()
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let spec = CampaignSpec::new(cfg).partitioners(registry).machines([
        MachineModel::default(),
        MachineModel::slow_network(),
        MachineModel::slow_cpu(),
    ]);
    let outcomes = Campaign::run(&spec);

    println!("app,machine,partitioner,total_time,mean_imbalance,mean_rel_comm,mean_rel_migration");
    for outcome in &outcomes {
        let s = outcome.summary();
        println!(
            "{},{},{},{:.0},{:.3},{:.4},{:.4}",
            outcome.scenario.app.name(),
            outcome.scenario.machine_name(),
            s.partitioner_name,
            s.total_time,
            s.mean_imbalance,
            s.mean_rel_comm,
            s.mean_rel_migration
        );
    }
    for &machine in &spec.machines {
        let mname = machine.preset_name().unwrap_or("custom");
        for kind in AppKind::ALL {
            let per_app: Vec<&ScenarioOutcome> = outcomes
                .iter()
                .filter(|o| o.scenario.app == kind && o.scenario.sim.machine == machine)
                .collect();
            let static_times: Vec<f64> = per_app
                .iter()
                .filter(|o| matches!(o.scenario.partitioner, PartitionerSpec::Static(_)))
                .map(|o| o.sim.total_time)
                .collect();
            let meta_time = per_app
                .iter()
                .find(|o| o.scenario.partitioner == PartitionerSpec::Meta)
                .map(|o| o.sim.total_time)
                .expect("meta scenario in campaign");
            let best = static_times.iter().cloned().fold(f64::INFINITY, f64::min);
            let worst = static_times
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            eprintln!(
                "{} on {}: meta/best-static = {:.3}, meta/worst-static = {:.3}",
                kind.name(),
                mname,
                meta_time / best,
                meta_time / worst
            );
        }
    }
}
