//! META1 experiment: static vs. dynamic partitioner selection.
//!
//! The paper's motivation (Figure 1, §3) and the ArMADA proof of concept:
//! a static partitioner choice leaves execution time on the table; "even
//! with such a simple model, execution times were reduced". This example
//! runs every application trace under each static partitioner family and
//! under the adaptive meta-partitioner, on three machine models
//! (balanced, communication-starved, compute-bound), and reports total
//! estimated execution times.

use samr::apps::AppKind;
use samr::experiments::{cached_trace, configs};
use samr::meta::compare_on_trace;
use samr::sim::{MachineModel, SimConfig};

fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let cfg = if reduced {
        configs::reduced()
    } else {
        configs::paper()
    };
    let machines = [
        ("balanced", MachineModel::default()),
        ("slow-network", MachineModel::slow_network()),
        ("slow-cpu", MachineModel::slow_cpu()),
    ];
    println!("app,machine,partitioner,total_time,mean_imbalance,mean_rel_comm,mean_rel_migration");
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        for (mname, machine) in &machines {
            let sim_cfg = SimConfig {
                machine: *machine,
                ..SimConfig::default()
            };
            let res = compare_on_trace(&trace, &sim_cfg);
            for r in res
                .static_runs
                .iter()
                .chain([&res.octant_run, &res.meta_run])
            {
                println!(
                    "{},{},{},{:.0},{:.3},{:.4},{:.4}",
                    kind.name(),
                    mname,
                    r.name,
                    r.total_time,
                    r.mean_imbalance,
                    r.mean_rel_comm,
                    r.mean_rel_migration
                );
            }
            eprintln!(
                "{} on {}: meta/best-static = {:.3}, meta/worst-static = {:.3}",
                kind.name(),
                mname,
                res.meta_vs_best(),
                res.meta_vs_worst()
            );
        }
    }
}
