//! Regenerate every data figure of the paper in one campaign.
//!
//! Expands the figure sweep (4 apps × {hybrid, domain-sfc}) through
//! `samr-engine`'s `Campaign`, writes `results/fig{4,5,6,7}_<app>.csv`
//! (both panels of each validation figure plus the Figure-1 series),
//! prints every figure's shape-statistics summary, and finishes with the
//! META1 comparison. Pass `--reduced` for the fast variant.

use samr::apps::AppKind;
use samr::engine::{cached_trace, configs, ValidationRun};
use samr::meta::compare_on_trace;
use samr::sim::SimConfig;
use std::fs;

fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let cfg = if reduced {
        configs::reduced()
    } else {
        configs::paper()
    };
    let sim_cfg = configs::sim();
    fs::create_dir_all("results").expect("create results dir");

    println!("== Figures 4-7: model vs measurement (one campaign) ==");
    let runs = ValidationRun::all_figures(&cfg, &sim_cfg);
    for run in &runs {
        let path = format!(
            "results/fig{}_{}.csv",
            run.figure_number(),
            run.app.name().to_lowercase()
        );
        fs::write(&path, run.to_csv()).expect("write figure csv");
        println!("{}   [{path}]", run.summary());
    }

    println!("\n== Figure 1: BL2D dynamics under a static P (see fig5_bl2d.csv) ==");
    let bl = runs
        .iter()
        .find(|r| r.app == AppKind::Bl2d)
        .expect("BL2D figure in campaign");
    let imb: Vec<f64> = bl.sim.steps.iter().map(|s| s.load_imbalance).collect();
    println!(
        "load imbalance mean {:.3}, range [{:.3}, {:.3}]",
        imb.iter().sum::<f64>() / imb.len() as f64,
        imb.iter().cloned().fold(f64::INFINITY, f64::min),
        imb.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );

    println!("\n== META1: static vs dynamic selection (balanced machine) ==");
    for kind in AppKind::ALL {
        let trace = cached_trace(kind, &cfg);
        let res = compare_on_trace(trace.as_2d().expect("paper app"), &SimConfig::default());
        print!("{:5}:", kind.name());
        for r in &res.static_runs {
            print!("  {}={:.0}", r.name, r.total_time);
        }
        println!(
            "  META={:.0}  (vs best {:.3}, vs worst {:.3})",
            res.meta_run.total_time,
            res.meta_vs_best(),
            res.meta_vs_worst()
        );
    }
}
